package sched

import "sort"

// Rebalance configures the online adaptive repartitioner. The zero
// value disables rebalancing entirely (Enabled reports false), so it
// can be embedded in option structs without changing behaviour.
//
// The detector triggers when the per-processor imbalance (max/mean of
// decayed per-bucket activation load) reaches Threshold; a replan is
// committed only when it predicts an imbalance improvement greater
// than Hysteresis, and at most once every MinInterval cycles. This is
// the dynamic counterpart of the paper's static §5.2.2 policies: the
// paper judged migrating Rete state "too costly" to attempt, so the
// knobs here exist to let the cost be measured rather than assumed.
type Rebalance struct {
	// Threshold is the max/mean per-processor imbalance that arms a
	// migration (1.0 = perfectly even). Values <= 0 disable
	// rebalancing; values <= 1 trigger on any measurable skew.
	Threshold float64
	// Hysteresis is the minimum predicted imbalance improvement a
	// replan must deliver before buckets actually move. 0 commits any
	// strictly improving plan.
	Hysteresis float64
	// MinInterval is the minimum number of cycles between migrations.
	// Values < 1 are treated as 1 (a migration every cycle boundary is
	// allowed).
	MinInterval int
	// MaxMoves caps how many buckets one rebalance may migrate,
	// hottest first. 0 means unlimited.
	MaxMoves int
}

// Enabled reports whether the configuration turns rebalancing on.
func (r Rebalance) Enabled() bool { return r.Threshold > 0 }

// minInterval returns the effective migration cooldown.
func (r Rebalance) minInterval() int {
	if r.MinInterval < 1 {
		return 1
	}
	return r.MinInterval
}

// DefaultRebalance is a reasonable starting point for skewed
// workloads: trigger on >=30% imbalance, demand a 5% predicted
// improvement, and wait two cycles between migrations.
func DefaultRebalance() Rebalance {
	return Rebalance{Threshold: 1.3, Hysteresis: 0.05, MinInterval: 2}
}

// PartitionMoves returns the buckets (ascending) whose owner differs
// between two partitions of the same length.
func PartitionMoves(old, new Partition) []int {
	var moves []int
	for b := range old {
		if b < len(new) && old[b] != new[b] {
			moves = append(moves, b)
		}
	}
	return moves
}

// Balancer is the deterministic online hot-bucket detector and
// migration planner shared by the live parallel runtime, the TCP
// control plane, and the trace simulator. Callers feed it per-bucket
// activation counts as cycles execute (Observe / ObserveCycle) and ask
// at every cycle boundary whether to migrate (EndCycle). All
// arithmetic is integral — per-bucket loads decay by halving each
// cycle — so every engine that replays the same observation sequence
// plans the identical migrations.
type Balancer struct {
	reb   Rebalance
	procs int
	part  Partition // current assignment (owned copy)
	load  []int64   // decayed per-bucket activation load
	per   []int64   // per-processor scratch (imbalanceOf runs every cycle)
	since int       // cycles since the last migration
}

// NewBalancer creates a balancer over a copy of the initial partition.
func NewBalancer(reb Rebalance, initial Partition, procs int) *Balancer {
	return &Balancer{
		reb:   reb,
		procs: procs,
		part:  append(Partition(nil), initial...),
		load:  make([]int64, len(initial)),
		per:   make([]int64, procs),
		since: reb.minInterval(), // eligible immediately
	}
}

// Observe records n activations processed for bucket b this cycle.
func (bl *Balancer) Observe(b int, n int64) {
	if b >= 0 && b < len(bl.load) {
		bl.load[b] += n
	}
}

// ObserveCycle records a whole cycle's bucket-load map (the
// trace.BucketLoad shape) — the simulator's feeding path.
func (bl *Balancer) ObserveCycle(load map[int]int) {
	for b, n := range load {
		bl.Observe(b, int64(n))
	}
}

// Partition returns the current assignment. The slice is shared;
// callers must not mutate it.
func (bl *Balancer) Partition() Partition { return bl.part }

// Imbalance returns max/mean per-processor decayed load under the
// current partition (1.0 when idle or perfectly even).
func (bl *Balancer) Imbalance() float64 { return bl.imbalanceOf(bl.part) }

// imbalanceOf computes max/mean per-processor load under p without
// allocating (it runs once per cycle on the live runtime's control
// path, where steady-state cycles are pinned at O(1) allocations).
func (bl *Balancer) imbalanceOf(p Partition) float64 {
	var max, sum int64
	per := bl.per
	for i := range per {
		per[i] = 0
	}
	for b, l := range bl.load {
		per[p[b]] += l
	}
	for _, l := range per {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(bl.procs)
	return float64(max) / mean
}

// EndCycle closes out a cycle: it decides whether the decayed loads
// justify a migration, then applies the per-cycle decay. When a
// migration is warranted it commits the new assignment internally and
// returns a fresh copy of it with ok=true; otherwise it returns
// (nil, false).
func (bl *Balancer) EndCycle() (Partition, bool) {
	bl.since++
	migrated := false
	if bl.since >= bl.reb.minInterval() {
		migrated = bl.replan()
	}
	for b := range bl.load {
		bl.load[b] /= 2
	}
	if !migrated {
		return nil, false
	}
	return append(Partition(nil), bl.part...), true
}

// replan runs the detector and, when armed, plans a sticky greedy
// (LPT) reassignment of the hot buckets. Returns whether a migration
// was committed.
func (bl *Balancer) replan() bool {
	cur := bl.imbalanceOf(bl.part)
	if cur < bl.reb.Threshold {
		return false
	}
	cand := bl.plan()
	if bl.reb.MaxMoves > 0 {
		bl.trim(cand)
	}
	if cur-bl.imbalanceOf(cand) <= bl.reb.Hysteresis {
		return false
	}
	bl.part = cand
	bl.since = 0
	return true
}

// plan LPT-packs the hot buckets (heaviest first, ties by bucket
// index) onto the least-loaded processor, preferring each bucket's
// current owner on load ties so cold state does not churn. Buckets
// with no decayed load keep their current owner.
func (bl *Balancer) plan() Partition {
	type hotBucket struct {
		b int
		l int64
	}
	hot := make([]hotBucket, 0, 16)
	for b, l := range bl.load {
		if l > 0 {
			hot = append(hot, hotBucket{b, l})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].l != hot[j].l {
			return hot[i].l > hot[j].l
		}
		return hot[i].b < hot[j].b
	})
	cand := append(Partition(nil), bl.part...)
	per := make([]int64, bl.procs)
	for _, h := range hot {
		best := 0
		for p := 1; p < bl.procs; p++ {
			if per[p] < per[best] {
				best = p
			}
		}
		if cur := bl.part[h.b]; per[cur] == per[best] {
			best = cur
		}
		cand[h.b] = best
		per[best] += h.l
	}
	return cand
}

// trim reverts all but the MaxMoves hottest moves in cand back to
// their current owner (in place).
func (bl *Balancer) trim(cand Partition) {
	moved := PartitionMoves(bl.part, cand)
	if len(moved) <= bl.reb.MaxMoves {
		return
	}
	sort.Slice(moved, func(i, j int) bool {
		if bl.load[moved[i]] != bl.load[moved[j]] {
			return bl.load[moved[i]] > bl.load[moved[j]]
		}
		return moved[i] < moved[j]
	})
	for _, b := range moved[bl.reb.MaxMoves:] {
		cand[b] = bl.part[b]
	}
}

// AdaptiveStrategy is the online rebalancing policy as a sweep-able
// Strategy: it starts from the round-robin assignment (the only thing
// a real system can do without trace foreknowledge) and then lets the
// engine's Balancer migrate hot buckets as the run unfolds. Engines
// that cannot migrate treat it as plain round-robin.
type AdaptiveStrategy struct {
	// Rebalance overrides the detector knobs; the zero value means
	// DefaultRebalance().
	Rebalance Rebalance
}

func (AdaptiveStrategy) Name() string { return "adaptive" }

func (AdaptiveStrategy) Assign(_ []map[int]int, nbuckets, procs int) Partition {
	return RoundRobin(nbuckets, procs)
}

// RebalanceConfig returns the effective detector knobs.
func (s AdaptiveStrategy) RebalanceConfig() Rebalance {
	if !s.Rebalance.Enabled() {
		return DefaultRebalance()
	}
	return s.Rebalance
}

// RebalanceStrategy is a Strategy that wants the engine to rebalance
// buckets online while the run executes. Callers that support live
// migration (the simulator via Config.Rebalance, the parallel runtime
// via Options.Rebalance) should type-assert to this interface; others
// fall back to the static Assign.
type RebalanceStrategy interface {
	Strategy
	RebalanceConfig() Rebalance
}
