package sched

import (
	"math"
	"math/rand"
)

// Model is the paper's simple probabilistic model of active-bucket
// distribution (Section 5.2.2): of Buckets hash buckets, Active are
// active in a cycle and each receives exactly one activation; buckets
// are distributed uniformly over Procs processors. The model explains
// why speedups stop scaling: the per-cycle maximum processor load, not
// the mean, bounds the cycle time.
type Model struct {
	Buckets int
	Active  int
	Procs   int
}

// lnFact returns ln(n!).
func lnFact(n int) float64 {
	v, _ := math.Lgamma(float64(n + 1))
	return v
}

// PEven is the probability that the Active activations divide exactly
// evenly over the processors (requires Procs | Active; zero
// otherwise), under independent uniform placement. It is the
// multinomial probability A! / ((A/P)!)^P / P^A.
func (m Model) PEven() float64 {
	if m.Active == 0 {
		return 1
	}
	if m.Procs <= 0 || m.Active%m.Procs != 0 {
		return 0
	}
	per := m.Active / m.Procs
	ln := lnFact(m.Active) - float64(m.Procs)*lnFact(per) - float64(m.Active)*math.Log(float64(m.Procs))
	return math.Exp(ln)
}

// PAllOnOne is the probability that every activation lands on a single
// processor: P * (1/P)^A.
func (m Model) PAllOnOne() float64 {
	if m.Active == 0 || m.Procs <= 1 {
		return 1
	}
	return math.Exp(math.Log(float64(m.Procs)) - float64(m.Active)*math.Log(float64(m.Procs)))
}

// Result summarizes a Monte-Carlo evaluation of the model.
type Result struct {
	Trials int
	// EMaxLoad is the expected maximum per-processor load.
	EMaxLoad float64
	// PEvenObserved is the observed frequency of perfectly even splits.
	PEvenObserved float64
	// SpeedupBound is Active / EMaxLoad: the best parallel speedup the
	// distribution permits when every activation costs the same.
	SpeedupBound float64
}

// MonteCarlo samples the model: Active distinct buckets are chosen
// among Buckets, buckets are assigned to processors round-robin (as in
// the paper's simulations), and the per-processor active-bucket load
// is measured. Deterministic for a given seed.
func (m Model) MonteCarlo(trials int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Trials: trials}
	if m.Active == 0 || m.Procs == 0 {
		res.SpeedupBound = 1
		return res
	}
	perProc := make([]int, m.Procs)
	var sumMax, evens int
	for t := 0; t < trials; t++ {
		for i := range perProc {
			perProc[i] = 0
		}
		// Sample Active distinct buckets from [0, Buckets).
		chosen := rng.Perm(m.Buckets)[:m.Active]
		for _, b := range chosen {
			perProc[b%m.Procs]++
		}
		max := 0
		even := true
		want := m.Active / m.Procs
		for _, l := range perProc {
			if l > max {
				max = l
			}
			if l != want {
				even = false
			}
		}
		sumMax += max
		if even && m.Active%m.Procs == 0 {
			evens++
		}
	}
	res.EMaxLoad = float64(sumMax) / float64(trials)
	res.PEvenObserved = float64(evens) / float64(trials)
	if res.EMaxLoad > 0 {
		res.SpeedupBound = float64(m.Active) / res.EMaxLoad
	}
	return res
}
