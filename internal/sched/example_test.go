package sched_test

import (
	"fmt"

	"mpcrete/internal/sched"
)

// ExampleGreedy balances a skewed bucket load over three processors.
func ExampleGreedy() {
	load := map[int]int{0: 9, 4: 7, 8: 5, 12: 3}
	p := sched.Greedy(load, 16, 3)
	per := sched.LoadPerProc(p, load, 3)
	fmt.Println(per, fmt.Sprintf("%.2f", sched.Imbalance(per)))
	// Output: [9 7 8] 1.12
}

// ExampleModel evaluates the paper's balls-in-bins distribution model.
func ExampleModel() {
	m := sched.Model{Buckets: 512, Active: 64, Procs: 16}
	fmt.Printf("P(even) < 1%%: %v\n", m.PEven() < 0.01)
	mc := m.MonteCarlo(1000, 7)
	fmt.Printf("speedup bound below machine size: %v\n", mc.SpeedupBound < 16)
	// Output:
	// P(even) < 1%: true
	// speedup bound below machine size: true
}
