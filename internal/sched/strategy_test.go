package sched

import (
	"reflect"
	"testing"
)

func strategyLoad() []map[int]int {
	return []map[int]int{
		{0: 10, 3: 2, 5: 7},
		{1: 4, 3: 9},
	}
}

// TestStrategiesMatchFreeFunctions pins each Strategy to the free
// function it wraps, so migrating a call site cannot change results.
func TestStrategiesMatchFreeFunctions(t *testing.T) {
	load := strategyLoad()
	const nbuckets, procs = 8, 3

	if got, want := (RoundRobinStrategy{}).Assign(load, nbuckets, procs), RoundRobin(nbuckets, procs); !reflect.DeepEqual(got, want) {
		t.Errorf("round-robin: %v != %v", got, want)
	}
	if got, want := (RandomStrategy{Seed: 42}).Assign(load, nbuckets, procs), Random(nbuckets, procs, 42); !reflect.DeepEqual(got, want) {
		t.Errorf("random: %v != %v", got, want)
	}
	if got, want := (GreedyAggregateStrategy{}).Assign(load, nbuckets, procs), GreedyAggregate(load, nbuckets, procs); !reflect.DeepEqual(got, want) {
		t.Errorf("greedy-aggregate: %v != %v", got, want)
	}
	if got, want := (GreedyPerCycleStrategy{}).AssignPerCycle(load, nbuckets, procs), GreedyPerCycle(load, nbuckets, procs); !reflect.DeepEqual(got, want) {
		t.Errorf("greedy-per-cycle: %v != %v", got, want)
	}
}

func TestStrategyByName(t *testing.T) {
	for name, wantType := range map[string]Strategy{
		"round-robin":      RoundRobinStrategy{},
		"roundrobin":       RoundRobinStrategy{},
		"random":           RandomStrategy{Seed: 7},
		"greedy-aggregate": GreedyAggregateStrategy{},
		"aggregate":        GreedyAggregateStrategy{},
		"greedy":           GreedyPerCycleStrategy{},
		"greedy-per-cycle": GreedyPerCycleStrategy{},
	} {
		got, err := StrategyByName(name, 7)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if reflect.TypeOf(got) != reflect.TypeOf(wantType) {
			t.Errorf("%s resolved to %T, want %T", name, got, wantType)
		}
	}
	if _, err := StrategyByName("bogus", 0); err == nil {
		t.Error("bogus strategy did not error")
	}
	// The per-cycle oracle must be selectable through the optional
	// interface; the static strategies must not claim it.
	g, _ := StrategyByName("greedy", 0)
	if _, ok := g.(PerCycleStrategy); !ok {
		t.Error("greedy does not implement PerCycleStrategy")
	}
	rr, _ := StrategyByName("round-robin", 0)
	if _, ok := rr.(PerCycleStrategy); ok {
		t.Error("round-robin wrongly implements PerCycleStrategy")
	}
}

func TestStrategyNames(t *testing.T) {
	want := []string{"round-robin", "random", "greedy-aggregate", "greedy-per-cycle", "adaptive"}
	if got := StrategyNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("StrategyNames() = %v, want %v", got, want)
	}
	for _, name := range want {
		if _, err := StrategyByName(name, 1); err != nil {
			t.Errorf("canonical name %q not resolvable: %v", name, err)
		}
	}
}
