package ops5

import (
	"fmt"
	"sort"
	"strings"
)

// WME is a working-memory element: a class name plus a set of
// attribute-value pairs. Each wme carries a unique ID (assigned by the
// working memory that owns it) and a time tag (the cycle on which it
// was created), which conflict resolution uses for recency ordering.
type WME struct {
	ID      int
	TimeTag int
	Class   string
	Attrs   map[string]Value
}

// NewWME builds a wme from alternating attribute/value arguments.
// It is a convenience for tests and examples:
//
//	NewWME("block", "name", S("b1"), "color", S("blue"))
func NewWME(class string, pairs ...any) *WME {
	if len(pairs)%2 != 0 {
		panic("ops5.NewWME: odd number of attribute/value arguments")
	}
	w := &WME{Class: class, Attrs: make(map[string]Value, len(pairs)/2)}
	for i := 0; i < len(pairs); i += 2 {
		attr, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("ops5.NewWME: attribute %d is %T, want string", i/2, pairs[i]))
		}
		switch v := pairs[i+1].(type) {
		case Value:
			w.Attrs[attr] = v
		case string:
			w.Attrs[attr] = S(v)
		case int:
			w.Attrs[attr] = N(float64(v))
		case float64:
			w.Attrs[attr] = N(v)
		default:
			panic(fmt.Sprintf("ops5.NewWME: value for ^%s is %T", attr, pairs[i+1]))
		}
	}
	return w
}

// Get returns the value of an attribute, or the nil Value if absent.
func (w *WME) Get(attr string) Value { return w.Attrs[attr] }

// Clone returns a deep copy of the wme (same class and attributes,
// same ID and time tag). Modify actions clone before rewriting.
func (w *WME) Clone() *WME {
	c := &WME{ID: w.ID, TimeTag: w.TimeTag, Class: w.Class, Attrs: make(map[string]Value, len(w.Attrs))}
	for k, v := range w.Attrs {
		c.Attrs[k] = v
	}
	return c
}

// Equal reports whether two wmes have the same class and attributes
// (IDs and time tags are ignored; used to locate duplicates).
func (w *WME) Equal(o *WME) bool {
	if w.Class != o.Class || len(w.Attrs) != len(o.Attrs) {
		return false
	}
	for k, v := range w.Attrs {
		if !v.Equal(o.Attrs[k]) {
			return false
		}
	}
	return true
}

// String renders the wme in OPS5 source syntax with attributes sorted
// for determinism: (block ^color blue ^name b1).
func (w *WME) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(w.Class)
	attrs := make([]string, 0, len(w.Attrs))
	for a := range w.Attrs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		fmt.Fprintf(&b, " ^%s %s", a, w.Attrs[a])
	}
	b.WriteByte(')')
	return b.String()
}
