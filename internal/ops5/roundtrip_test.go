package ops5

import (
	"math/rand"
	"testing"
)

// randomProductionAST builds a random but valid production AST
// directly, exercising printer/parser corners the textual generators
// miss.
func randomProductionAST(rng *rand.Rand, name string) *Production {
	classes := []string{"alpha", "beta", "gamma"}
	attrs := []string{"x", "y", "z"}
	vars := []string{"u", "v", "w"}
	ops := []PredOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpSameType}

	randConst := func() Value {
		if rng.Intn(2) == 0 {
			return S([]string{"on", "off", "red-7", "k*"}[rng.Intn(4)])
		}
		return N(float64(rng.Intn(20)) - 5)
	}

	randTerm := func(allowDisj bool) Term {
		switch {
		case allowDisj && rng.Intn(6) == 0:
			n := 1 + rng.Intn(3)
			var d []Value
			for i := 0; i < n; i++ {
				d = append(d, randConst())
			}
			return Term{Op: OpEq, Disj: d}
		case rng.Intn(2) == 0:
			v := randConst()
			return Term{Op: ops[rng.Intn(len(ops))], Const: &v}
		default:
			return Term{Op: ops[rng.Intn(len(ops))], Var: vars[rng.Intn(len(vars))]}
		}
	}

	p := &Production{Name: name}
	nce := 1 + rng.Intn(3)
	// Guarantee a positive CE binding every variable so RHS lookups
	// validate: the first CE binds u, v, w.
	first := CE{Class: classes[0]}
	for i, v := range vars {
		first.Tests = append(first.Tests, AttrTest{Attr: attrs[i], Terms: []Term{{Op: OpEq, Var: v}}})
	}
	p.LHS = append(p.LHS, first)
	for c := 1; c < nce; c++ {
		ce := CE{Class: classes[rng.Intn(len(classes))], Negated: rng.Intn(4) == 0}
		for _, attr := range attrs {
			if rng.Intn(2) == 0 {
				continue
			}
			nterm := 1 + rng.Intn(2)
			at := AttrTest{Attr: attr}
			for i := 0; i < nterm; i++ {
				at.Terms = append(at.Terms, randTerm(nterm == 1))
			}
			ce.Tests = append(ce.Tests, at)
		}
		p.LHS = append(p.LHS, ce)
	}

	randExpr := func() Expr {
		switch rng.Intn(3) {
		case 0:
			v := randConst()
			return Expr{Const: &v}
		case 1:
			return Expr{Var: vars[rng.Intn(len(vars))]}
		default:
			one, two := N(float64(rng.Intn(9)+1)), Expr{Var: vars[rng.Intn(len(vars))]}
			return Expr{
				Operands: []Expr{{Const: &one}, two},
				Ops:      []ExprOp{[]ExprOp{ExprAdd, ExprSub, ExprMul, ExprDiv, ExprMod}[rng.Intn(5)]},
			}
		}
	}

	nact := 1 + rng.Intn(3)
	for a := 0; a < nact; a++ {
		switch rng.Intn(5) {
		case 0:
			p.RHS = append(p.RHS, Action{Kind: ActMake, Class: classes[rng.Intn(3)],
				Assigns: []AttrAssign{{Attr: attrs[rng.Intn(3)], Expr: randExpr()}}})
		case 1:
			p.RHS = append(p.RHS, Action{Kind: ActRemove, CEIndexes: []int{1}})
		case 2:
			p.RHS = append(p.RHS, Action{Kind: ActModify, CEIndexes: []int{1},
				Assigns: []AttrAssign{{Attr: attrs[rng.Intn(3)], Expr: randExpr()}}})
		case 3:
			p.RHS = append(p.RHS, Action{Kind: ActWrite, Args: []Expr{randExpr(), randExpr()}})
		default:
			p.RHS = append(p.RHS, Action{Kind: ActHalt})
		}
	}
	return p
}

// TestRandomASTPrintParseRoundTrip: print(parse(print(ast))) is
// idempotent and parse never fails on printed output.
func TestRandomASTPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 300; i++ {
		p := randomProductionAST(rng, "rt")
		if err := p.Validate(); err != nil {
			// The generator can produce all-negated later CEs only;
			// first CE is always positive, so Validate must pass.
			t.Fatalf("generated invalid production: %v\n%s", err, p)
		}
		src := p.String()
		q, err := ParseProduction(src)
		if err != nil {
			t.Fatalf("parse of printed production failed: %v\n%s", err, src)
		}
		if q.String() != src {
			t.Fatalf("round trip not idempotent:\n%s\n%s", src, q.String())
		}
	}
}
