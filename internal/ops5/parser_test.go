package ops5

import (
	"math/rand"
	"strings"
	"testing"
)

const clearBlue = `
(p clear-the-blue-block
    (block ^name <block2> ^color blue)
    (block ^name <block2> ^on <block1>)
    (hand ^state free)
    -->
    (remove 2))
`

func TestParseClearBlueBlock(t *testing.T) {
	prod, err := ParseProduction(clearBlue)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Name != "clear-the-blue-block" {
		t.Errorf("name = %q", prod.Name)
	}
	if len(prod.LHS) != 3 {
		t.Fatalf("len(LHS) = %d, want 3", len(prod.LHS))
	}
	ce := prod.LHS[0]
	if ce.Class != "block" || ce.Negated {
		t.Errorf("CE1 = %v", ce)
	}
	if len(ce.Tests) != 2 {
		t.Fatalf("CE1 tests = %d, want 2", len(ce.Tests))
	}
	if ce.Tests[0].Attr != "name" || ce.Tests[0].Terms[0].Var != "block2" {
		t.Errorf("CE1 ^name test = %v", ce.Tests[0])
	}
	if ce.Tests[1].Attr != "color" || ce.Tests[1].Terms[0].Const == nil || !ce.Tests[1].Terms[0].Const.Equal(S("blue")) {
		t.Errorf("CE1 ^color test = %v", ce.Tests[1])
	}
	if len(prod.RHS) != 1 || prod.RHS[0].Kind != ActRemove || prod.RHS[0].CEIndexes[0] != 2 {
		t.Errorf("RHS = %v", prod.RHS)
	}
}

func TestParseNegatedAndPredicates(t *testing.T) {
	src := `
(p check
    (item ^size { > 2 <= 10 } ^kind <> widget ^owner <o>)
    -(lock ^holder <o>)
    (range ^lo < 5 ^hi >= 5 ^tag <=> sym ^alt << a b 3 >>)
    -->
    (make result ^owner <o> ^score (compute 2 * 3 + 1))
    (write found <o> (crlf))
    (halt))
`
	prod, err := ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	ce := prod.LHS[0]
	sz := ce.Tests[0]
	if len(sz.Terms) != 2 || sz.Terms[0].Op != OpGt || sz.Terms[1].Op != OpLe {
		t.Errorf("size terms = %v", sz.Terms)
	}
	if ce.Tests[1].Terms[0].Op != OpNe {
		t.Errorf("kind term = %v", ce.Tests[1].Terms[0])
	}
	if !prod.LHS[1].Negated {
		t.Error("second CE should be negated")
	}
	r := prod.LHS[2]
	if r.Tests[0].Terms[0].Op != OpLt || r.Tests[1].Terms[0].Op != OpGe || r.Tests[2].Terms[0].Op != OpSameType {
		t.Errorf("range tests = %v", r.Tests)
	}
	if d := r.Tests[3].Terms[0].Disj; len(d) != 3 || !d[2].Equal(N(3)) {
		t.Errorf("disjunction = %v", d)
	}
	mk := prod.RHS[0]
	if mk.Kind != ActMake || mk.Class != "result" {
		t.Errorf("make = %v", mk)
	}
	comp := mk.Assigns[1].Expr
	if len(comp.Operands) != 3 || comp.Ops[0] != ExprMul || comp.Ops[1] != ExprAdd {
		t.Errorf("compute = %v", comp)
	}
	if prod.RHS[2].Kind != ActHalt {
		t.Errorf("third action = %v", prod.RHS[2])
	}
}

func TestParseProgramLiteralize(t *testing.T) {
	src := `
; a comment
(literalize block name color on)
(literalize hand state)
(p noop (block ^name <n>) --> (write <n>))
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Literalizes["block"]; len(got) != 3 || got[2] != "on" {
		t.Errorf("literalize block = %v", got)
	}
	if len(prog.Productions) != 1 {
		t.Errorf("productions = %d", len(prog.Productions))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty LHS", `(p x --> (halt))`, "empty LHS"},
		{"all negated", `(p x -(a ^v 1) --> (halt))`, "negated"},
		{"remove range", `(p x (a ^v 1) --> (remove 2))`, "out of range"},
		{"modify negated", `(p x (a ^v 1) -(b ^v 1) --> (modify 2 ^v 2))`, "negated condition element"},
		{"unbound var", `(p x (a ^v 1) --> (make b ^v <q>))`, "unbound"},
		{"bad action", `(p x (a ^v 1) --> (frob 1))`, "unknown action"},
		{"empty disj", `(p x (a ^v << >>) --> (halt))`, "empty disjunction"},
		{"pred disj", `(p x (a ^v > << 1 2 >>) --> (halt))`, "disjunction"},
		{"empty conj", `(p x (a ^v { }) --> (halt))`, "empty conjunctive"},
		{"unterminated var", `(p x (a ^v <q) --> (halt))`, "unterminated"},
		{"stray", `(q x)`, "unknown top-level"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var err error
			if c.name == "stray" {
				_, err = ParseProgram(c.src)
			} else {
				_, err = ParseProduction(c.src)
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestBindMakesVariableAvailable(t *testing.T) {
	src := `(p x (a ^v <n>) --> (bind <m> (compute <n> + 1)) (make a ^v <m>))`
	if _, err := ParseProduction(src); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	srcs := []string{
		clearBlue,
		`(p p2 (a ^x { <v> > 1 }) -(b ^y <v>) --> (modify 1 ^x (compute <v> - 1)) (write <v>))`,
		`(p p3 (c ^k << on off 0 >>) --> (remove 1) (make c ^k on))`,
	}
	for _, src := range srcs {
		p1, err := ParseProduction(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p2, err := ParseProduction(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip mismatch:\n%s\n%s", p1, p2)
		}
	}
}

func TestParseWMEs(t *testing.T) {
	wmes, err := ParseWMEs(`
(block ^name b1 ^color blue)
(block ^name b2 ^on b1)
(hand ^state free ^strength 7.5)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(wmes) != 3 {
		t.Fatalf("len = %d", len(wmes))
	}
	if !wmes[2].Get("strength").Equal(N(7.5)) {
		t.Errorf("strength = %v", wmes[2].Get("strength"))
	}
	if !wmes[0].Get("color").Equal(S("blue")) {
		t.Errorf("color = %v", wmes[0].Get("color"))
	}
	if !wmes[0].Get("missing").Nil() {
		t.Error("missing attribute should be nil")
	}
}

func TestNumberLexing(t *testing.T) {
	wmes, err := ParseWMEs(`(n ^a -3 ^b +4 ^c 2.5 ^d 1e3 ^e -0.5)`)
	if err != nil {
		t.Fatal(err)
	}
	w := wmes[0]
	want := map[string]float64{"a": -3, "b": 4, "c": 2.5, "d": 1000, "e": -0.5}
	for attr, num := range want {
		if got := w.Get(attr); !got.Equal(N(num)) {
			t.Errorf("^%s = %v, want %g", attr, got, num)
		}
	}
}

func TestWMEStringDeterministic(t *testing.T) {
	w := NewWME("block", "name", "b1", "color", "blue", "size", 3)
	want := "(block ^color blue ^name b1 ^size 3)"
	if w.String() != want {
		t.Errorf("String() = %q, want %q", w, want)
	}
	if !w.Equal(w.Clone()) {
		t.Error("clone not equal")
	}
	c := w.Clone()
	c.Attrs["color"] = S("red")
	if w.Equal(c) || w.Get("color").Equal(S("red")) {
		t.Error("clone aliases original")
	}
}

// TestParserNeverPanics feeds random byte strings and mutations of
// valid programs to the parser; it must return errors, not panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte("(){}<>^-+=; \n\tabp123.\"")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseProgram(src)
			_, _ = ParseProduction(src)
			_, _ = ParseWMEs(src)
		}()
	}
	// Mutations of a valid production.
	valid := `(p x (a ^v <n> ^w { > 1 <= 9 }) -(b ^v << on off >>) --> (modify 1 ^v (compute <n> + 1)))`
	for i := 0; i < 2000; i++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch rng.Intn(3) {
			case 0: // delete a byte
				if len(b) > 1 {
					p := rng.Intn(len(b))
					b = append(b[:p], b[p+1:]...)
				}
			case 1: // duplicate a byte
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
			default: // random replace
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %q: %v", src, r)
				}
			}()
			_, _ = ParseProduction(src)
		}()
	}
}
