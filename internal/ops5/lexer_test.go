package ops5

import (
	"strings"
	"testing"
)

// lexAll drains the lexer, returning rendered tokens.
func lexAll(t *testing.T, src string) []string {
	t.Helper()
	l := newLexer(src)
	var out []string
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok.String())
	}
}

func TestLexerAngleDisambiguation(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		// <x> is a variable; <> is a predicate; << >> are disjunction
		// brackets; <= and <=> are predicates; bare < is a predicate.
		{"<x>", []string{`variable "x"`}},
		{"<>", []string{`predicate "<>"`}},
		{"<= <=> <", []string{`predicate "<="`, `predicate "<=>"`, `predicate "<"`}},
		{"<< on off >>", []string{"'<<'", `symbol "on"`, `symbol "off"`, "'>>'"}},
		{"> >= >>", []string{`predicate ">"`, `predicate ">="`, "'>>'"}},
		{"<long-name2>", []string{`variable "long-name2"`}},
	}
	for _, c := range cases {
		got := lexAll(t, c.src)
		if len(got) != len(c.want) {
			t.Errorf("lex %q = %v, want %v", c.src, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("lex %q token %d = %s, want %s", c.src, i, got[i], c.want[i])
			}
		}
	}
}

func TestLexerMinusForms(t *testing.T) {
	// '-->' is the arrow; '-5' and '-.5' are numbers; lone '-' is the
	// negation marker; '-foo' lexes as the marker then a symbol (a
	// minus binds to a following digit only).
	got := lexAll(t, "--> -5 -.5 - -foo")
	want := []string{"'-->'", "number -5", "number -0.5", "'-'", "'-'", `symbol "foo"`}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexerCommentsAndWhitespace(t *testing.T) {
	got := lexAll(t, "a ; rest of line ignored\n\t b;x\nc")
	want := []string{`symbol "a"`, `symbol "b"`, `symbol "c"`}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLexerAttributes(t *testing.T) {
	got := lexAll(t, "^color ^x-y2 ^a*b")
	want := []string{`attribute "color"`, `attribute "x-y2"`, `attribute "a*b"`}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
	// Empty attribute name errors.
	l := newLexer("^ foo")
	if _, err := l.next(); err == nil {
		t.Error("empty attribute accepted")
	}
}

func TestLexerExponentBacktrack(t *testing.T) {
	// "1e" followed by a non-digit is the number 1 then a symbol.
	got := lexAll(t, "1e 2e+ 3e5")
	want := []string{"number 1", `symbol "e"`, "number 2", `symbol "e+"`, "number 300000"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	l := newLexer("a\n  bb")
	tok, err := l.next()
	if err != nil || tok.line != 1 || tok.col != 1 {
		t.Errorf("first token at %d:%d", tok.line, tok.col)
	}
	tok, err = l.next()
	if err != nil || tok.line != 2 || tok.col != 3 {
		t.Errorf("second token at %d:%d, want 2:3", tok.line, tok.col)
	}
}
