package ops5

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{S("blue"), S("blue"), true},
		{S("blue"), S("red"), false},
		{N(3), N(3), true},
		{N(3), N(3.5), false},
		{S("3"), N(3), false},
		{Value{}, Value{}, true},
		{Value{}, S(""), false},
		{S(""), S(""), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if cmp, ok := N(1).Compare(N(2)); !ok || cmp >= 0 {
		t.Errorf("1 < 2 expected, got cmp=%d ok=%v", cmp, ok)
	}
	if cmp, ok := S("b").Compare(S("a")); !ok || cmp <= 0 {
		t.Errorf("b > a expected, got cmp=%d ok=%v", cmp, ok)
	}
	if _, ok := S("a").Compare(N(1)); ok {
		t.Error("mixed-kind comparison should fail")
	}
	if _, ok := (Value{}).Compare(Value{}); ok {
		t.Error("nil comparison should fail")
	}
}

func TestPredOpApply(t *testing.T) {
	cases := []struct {
		op   PredOp
		a, b Value
		want bool
	}{
		{OpEq, S("x"), S("x"), true},
		{OpNe, S("x"), S("x"), false},
		{OpNe, S("x"), S("y"), true},
		{OpNe, S("x"), N(1), true}, // unequal kinds are <>
		{OpLt, N(1), N(2), true},
		{OpLt, N(2), N(1), false},
		{OpLe, N(2), N(2), true},
		{OpGt, N(3), N(2), true},
		{OpGe, N(2), N(3), false},
		{OpLt, S("a"), N(1), false}, // relational on mixed kinds fails
		{OpSameType, N(1), N(9), true},
		{OpSameType, N(1), S("a"), false},
		{OpSameType, Value{}, Value{}, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("(%v %s %v) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Distinct values must have distinct keys; equal values equal keys.
	f := func(a, b float64, s1, s2 string) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		vs := []Value{N(a), N(b), S(s1), S(s2), {}}
		for i := range vs {
			for j := range vs {
				if vs[i].Equal(vs[j]) != (vs[i].Key() == vs[j].Key()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolNumberKeyCollision(t *testing.T) {
	// A symbol spelled like a number must not collide with the number.
	if S("3").Key() == N(3).Key() {
		t.Error("symbol \"3\" and number 3 share a key")
	}
}

func TestPredOpString(t *testing.T) {
	want := map[PredOp]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpSameType: "<=>"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}
