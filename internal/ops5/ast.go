package ops5

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a single test applied to a wme attribute value. Exactly one
// of Const, Var, or Disj is populated:
//
//   - Const: compare the attribute value with a constant via Op.
//   - Var:   on the variable's first (defining) occurrence in the LHS
//     with Op == OpEq the attribute value is bound to the variable;
//     otherwise the attribute value is compared (via Op) with the
//     value bound at the defining occurrence.
//   - Disj:  the attribute value must equal one of the listed constants
//     (the OPS5 <<...>> form; Op is ignored).
type Term struct {
	Op    PredOp
	Const *Value
	Var   string
	Disj  []Value
}

// String renders the term in OPS5 source syntax.
func (t Term) String() string {
	var operand string
	switch {
	case t.Const != nil:
		operand = t.Const.String()
	case t.Var != "":
		operand = "<" + t.Var + ">"
	case len(t.Disj) > 0:
		parts := make([]string, len(t.Disj))
		for i, v := range t.Disj {
			parts[i] = v.String()
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	}
	if t.Op == OpEq {
		return operand
	}
	return t.Op.String() + " " + operand
}

// AttrTest is the set of tests applied to one attribute of a condition
// element. A single term is the common case; multiple terms arise from
// the conjunctive {...} form.
type AttrTest struct {
	Attr  string
	Terms []Term
}

// String renders the attribute test in OPS5 source syntax.
func (a AttrTest) String() string {
	if len(a.Terms) == 1 {
		return fmt.Sprintf("^%s %s", a.Attr, a.Terms[0])
	}
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("^%s { %s }", a.Attr, strings.Join(parts, " "))
}

// CE is a condition element: a class pattern over wmes, optionally
// negated.
type CE struct {
	Class   string
	Negated bool
	Tests   []AttrTest
}

// String renders the condition element in OPS5 source syntax.
func (c CE) String() string {
	var b strings.Builder
	if c.Negated {
		b.WriteByte('-')
	}
	b.WriteByte('(')
	b.WriteString(c.Class)
	for _, t := range c.Tests {
		b.WriteByte(' ')
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ExprOp enumerates the arithmetic operators of the OPS5 compute form.
type ExprOp uint8

const (
	ExprAdd ExprOp = iota // +
	ExprSub               // -
	ExprMul               // *
	ExprDiv               // //
	ExprMod               // \\ (spelled "mod" in this dialect)
)

var exprNames = [...]string{"+", "-", "*", "//", "mod"}

// String returns the source spelling of the operator.
func (op ExprOp) String() string { return exprNames[op] }

// Expr is a right-hand-side value expression: a constant, a variable
// reference, or a left-associated arithmetic chain (compute ...).
type Expr struct {
	Const *Value
	Var   string
	// For compute chains: Operands[0] op[0] Operands[1] op[1] ... .
	Operands []Expr
	Ops      []ExprOp
}

// String renders the expression in OPS5 source syntax.
func (e Expr) String() string {
	switch {
	case e.Const != nil:
		return e.Const.String()
	case e.Var != "":
		return "<" + e.Var + ">"
	default:
		parts := make([]string, 0, 2*len(e.Operands))
		for i, o := range e.Operands {
			if i > 0 {
				parts = append(parts, e.Ops[i-1].String())
			}
			parts = append(parts, o.String())
		}
		return "(compute " + strings.Join(parts, " ") + ")"
	}
}

// ActionKind enumerates RHS action types.
type ActionKind uint8

const (
	ActMake ActionKind = iota
	ActRemove
	ActModify
	ActWrite
	ActBind
	ActHalt
	ActExcise
)

var actNames = [...]string{"make", "remove", "modify", "write", "bind", "halt", "excise"}

// String returns the action keyword.
func (k ActionKind) String() string { return actNames[k] }

// AttrAssign assigns an expression to an attribute in a make or modify
// action.
type AttrAssign struct {
	Attr string
	Expr Expr
}

// Action is a single right-hand-side action.
type Action struct {
	Kind ActionKind
	// CEIndexes holds the 1-based LHS condition-element numbers for
	// remove; CEIndexes[0] is the target of modify.
	CEIndexes []int
	Class     string       // make: class of the new wme
	Assigns   []AttrAssign // make, modify
	Args      []Expr       // write
	Var       string       // bind: variable being bound
	BindExpr  Expr         // bind: value expression
}

// String renders the action in OPS5 source syntax.
func (a Action) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(a.Kind.String())
	switch a.Kind {
	case ActMake:
		b.WriteByte(' ')
		b.WriteString(a.Class)
		for _, as := range a.Assigns {
			fmt.Fprintf(&b, " ^%s %s", as.Attr, as.Expr)
		}
	case ActRemove:
		for _, i := range a.CEIndexes {
			fmt.Fprintf(&b, " %d", i)
		}
	case ActModify:
		fmt.Fprintf(&b, " %d", a.CEIndexes[0])
		for _, as := range a.Assigns {
			fmt.Fprintf(&b, " ^%s %s", as.Attr, as.Expr)
		}
	case ActWrite:
		for _, e := range a.Args {
			b.WriteByte(' ')
			b.WriteString(e.String())
		}
	case ActBind:
		fmt.Fprintf(&b, " <%s> %s", a.Var, a.BindExpr)
	case ActExcise:
		b.WriteByte(' ')
		b.WriteString(a.Class)
	case ActHalt:
	}
	b.WriteByte(')')
	return b.String()
}

// Production is an OPS5 rule: a named left-hand side (condition
// elements) and right-hand side (actions).
type Production struct {
	Name string
	LHS  []CE
	RHS  []Action
}

// String renders the production in OPS5 source syntax.
func (p *Production) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(p %s", p.Name)
	for _, ce := range p.LHS {
		b.WriteString("\n    ")
		b.WriteString(ce.String())
	}
	b.WriteString("\n    -->")
	for _, a := range p.RHS {
		b.WriteString("\n    ")
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Program is a parsed OPS5 source file: literalize declarations
// (recorded but not otherwise required by this implementation) and
// productions.
type Program struct {
	Literalizes map[string][]string // class -> declared attributes
	Productions []*Production
}

// String renders the whole program in OPS5 source syntax: literalize
// declarations first (sorted by class for determinism), then the
// productions in order. The output re-parses to an equal program, which
// the generative test harness relies on to persist generated programs
// as corpus files.
func (p *Program) String() string {
	var b strings.Builder
	classes := make([]string, 0, len(p.Literalizes))
	for c := range p.Literalizes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		b.WriteString("(literalize ")
		b.WriteString(c)
		for _, a := range p.Literalizes[c] {
			b.WriteByte(' ')
			b.WriteString(a)
		}
		b.WriteString(")\n")
	}
	for _, prod := range p.Productions {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(prod.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural well-formedness of a production:
// positive first CE sets exist for remove/modify targets, indexes are
// in range and not negated, and every RHS variable is bound on the LHS
// (or by an earlier bind action).
func (p *Production) Validate() error {
	if len(p.LHS) == 0 {
		return fmt.Errorf("production %s: empty LHS", p.Name)
	}
	positive := false
	bound := map[string]bool{}
	for _, ce := range p.LHS {
		if !ce.Negated {
			positive = true
		}
		for _, at := range ce.Tests {
			for _, t := range at.Terms {
				if t.Var != "" && t.Op == OpEq && !ce.Negated {
					bound[t.Var] = true
				}
			}
		}
	}
	if !positive {
		return fmt.Errorf("production %s: all condition elements are negated", p.Name)
	}
	// Negated CEs may only *use* variables bound in positive CEs or
	// introduce variables scoped to themselves; for this dialect we
	// additionally allow defining occurrences inside a negated CE (they
	// act as intra-CE consistency tests).
	var checkExpr func(e Expr) error
	checkExpr = func(e Expr) error {
		if e.Var != "" && !bound[e.Var] {
			return fmt.Errorf("production %s: unbound RHS variable <%s>", p.Name, e.Var)
		}
		for _, o := range e.Operands {
			if err := checkExpr(o); err != nil {
				return err
			}
		}
		return nil
	}
	for _, a := range p.RHS {
		switch a.Kind {
		case ActRemove, ActModify:
			for _, idx := range a.CEIndexes {
				if idx < 1 || idx > len(p.LHS) {
					return fmt.Errorf("production %s: %s index %d out of range 1..%d", p.Name, a.Kind, idx, len(p.LHS))
				}
				if p.LHS[idx-1].Negated {
					return fmt.Errorf("production %s: %s targets negated condition element %d", p.Name, a.Kind, idx)
				}
			}
		}
		for _, as := range a.Assigns {
			if err := checkExpr(as.Expr); err != nil {
				return err
			}
		}
		for _, e := range a.Args {
			if err := checkExpr(e); err != nil {
				return err
			}
		}
		if a.Kind == ActBind {
			if err := checkExpr(a.BindExpr); err != nil {
				return err
			}
			bound[a.Var] = true
		}
	}
	return nil
}
