package ops5

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types of the OPS5 surface syntax.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokDLAngle // <<
	tokDRAngle // >>
	tokAttr    // ^name
	tokSym     // bare symbol
	tokNum     // numeric literal
	tokVar     // <name>
	tokPred    // one of = <> < <= > >= <=>
	tokArrow   // -->
	tokMinus   // - (CE negation / subtraction)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokDLAngle:
		return "'<<'"
	case tokDRAngle:
		return "'>>'"
	case tokAttr:
		return "attribute"
	case tokSym:
		return "symbol"
	case tokNum:
		return "number"
	case tokVar:
		return "variable"
	case tokPred:
		return "predicate"
	case tokArrow:
		return "'-->'"
	case tokMinus:
		return "'-'"
	}
	return "token"
}

type token struct {
	kind tokenKind
	text string  // symbol / attribute / variable name / predicate spelling
	num  float64 // numeric value for tokNum
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokSym, tokAttr, tokVar, tokPred:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	case tokNum:
		return fmt.Sprintf("number %g", t.num)
	default:
		return t.kind.String()
	}
}

// lexer converts OPS5 source text into tokens. Comments run from ';'
// to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error reports a lexical or syntactic error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("ops5: %d:%d: %s", e.Line, e.Col, e.Msg) }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.peek()
		if c == ';' { // comment to end of line
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		break
	}
}

// isSymChar reports whether c can appear inside a bare symbol.
func isSymChar(c byte) bool {
	switch c {
	case 0, ' ', '\t', '\r', '\n', '(', ')', '{', '}', '^', ';', '<', '>':
		return false
	}
	return true
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '*' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next scans and returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := l.peek()
	switch c {
	case '(':
		l.advance()
		tok.kind = tokLParen
		return tok, nil
	case ')':
		l.advance()
		tok.kind = tokRParen
		return tok, nil
	case '{':
		l.advance()
		tok.kind = tokLBrace
		return tok, nil
	case '}':
		l.advance()
		tok.kind = tokRBrace
		return tok, nil
	case '^':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isSymChar(l.peek()) {
			l.advance()
		}
		if l.pos == start {
			return tok, l.errf("empty attribute name after '^'")
		}
		tok.kind = tokAttr
		tok.text = l.src[start:l.pos]
		return tok, nil
	case '=':
		l.advance()
		tok.kind = tokPred
		tok.text = "="
		return tok, nil
	case '>':
		l.advance()
		switch l.peek() {
		case '>':
			l.advance()
			tok.kind = tokDRAngle
		case '=':
			l.advance()
			tok.kind = tokPred
			tok.text = ">="
		default:
			tok.kind = tokPred
			tok.text = ">"
		}
		return tok, nil
	case '<':
		return l.lexAngle(tok)
	case '-':
		// '-->' arrow, negative number, or bare minus.
		if strings.HasPrefix(l.src[l.pos:], "-->") {
			l.advance()
			l.advance()
			l.advance()
			tok.kind = tokArrow
			return tok, nil
		}
		if d := l.peekAt(1); d >= '0' && d <= '9' || d == '.' && l.peekAt(2) >= '0' && l.peekAt(2) <= '9' {
			return l.lexNumber(tok)
		}
		l.advance()
		tok.kind = tokMinus
		return tok, nil
	}
	if c >= '0' && c <= '9' || c == '+' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' ||
		c == '.' && l.peekAt(1) >= '0' && l.peekAt(1) <= '9' {
		return l.lexNumber(tok)
	}
	if isSymChar(c) {
		start := l.pos
		for l.pos < len(l.src) && isSymChar(l.peek()) {
			l.advance()
		}
		tok.kind = tokSym
		tok.text = l.src[start:l.pos]
		return tok, nil
	}
	return tok, l.errf("unexpected character %q", c)
}

// lexAngle disambiguates the many tokens that begin with '<':
// '<<', '<=>', '<=', '<>', '<' (predicate), and '<var>' variables.
func (l *lexer) lexAngle(tok token) (token, error) {
	l.advance() // consume '<'
	switch l.peek() {
	case '<':
		l.advance()
		tok.kind = tokDLAngle
		return tok, nil
	case '=':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			tok.kind = tokPred
			tok.text = "<=>"
			return tok, nil
		}
		tok.kind = tokPred
		tok.text = "<="
		return tok, nil
	case '>':
		l.advance()
		tok.kind = tokPred
		tok.text = "<>"
		return tok, nil
	}
	if isIdentStart(l.peek()) {
		start := l.pos
		for l.pos < len(l.src) && l.peek() != '>' && isSymChar(l.peek()) {
			l.advance()
		}
		if l.peek() != '>' {
			return tok, l.errf("unterminated variable <%s", l.src[start:l.pos])
		}
		name := l.src[start:l.pos]
		l.advance() // consume '>'
		tok.kind = tokVar
		tok.text = name
		return tok, nil
	}
	tok.kind = tokPred
	tok.text = "<"
	return tok, nil
}

func (l *lexer) lexNumber(tok token) (token, error) {
	start := l.pos
	if c := l.peek(); c == '+' || c == '-' {
		l.advance()
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.peek()
		if c >= '0' && c <= '9' {
			l.advance()
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.advance()
			continue
		}
		if (c == 'e' || c == 'E') && l.pos > start {
			// exponent part
			save := l.pos
			l.advance()
			if c2 := l.peek(); c2 == '+' || c2 == '-' {
				l.advance()
			}
			if d := l.peek(); d < '0' || d > '9' {
				l.pos = save // not an exponent after all
				break
			}
			for l.pos < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
				l.advance()
			}
		}
		break
	}
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return tok, l.errf("bad number %q", text)
	}
	tok.kind = tokNum
	tok.num = f
	return tok, nil
}
