// Package ops5 implements the subset of the OPS5 production-system
// language used throughout this repository: typed values, working-memory
// elements (wmes), condition elements, productions, right-hand-side
// actions, and a parser for the textual OPS5 syntax.
//
// The subset matches Section 2.1 of Tambe, Acharya & Gupta
// (CMU-CS-89-129): constant tests, equality (variable) tests, predicate
// tests (=, <>, <, <=, >, >=, <=>), conjunctive tests {...}, disjunctive
// tests <<...>>, negated condition elements, and the make / remove /
// modify / write / bind / halt actions.
package ops5

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the two OPS5 scalar types.
type Kind uint8

const (
	// KindNil is the zero Value; it compares unequal to every symbol
	// and number and is what a wme reports for an absent attribute.
	KindNil Kind = iota
	// KindSym is a symbolic atom.
	KindSym
	// KindNum is a numeric atom. OPS5 does not distinguish integer and
	// floating-point atoms for matching purposes, so a single float64
	// representation is used.
	KindNum
)

// Value is an OPS5 scalar: a symbol, a number, or nil (absent).
// The zero value is the nil value.
type Value struct {
	Kind Kind
	Sym  string
	Num  float64
}

// S returns a symbol value.
func S(s string) Value { return Value{Kind: KindSym, Sym: s} }

// Crlf is the distinguished symbol produced by the (crlf) form in
// write actions; the engine prints it as a newline.
var Crlf = S("(crlf)")

// N returns a numeric value.
func N(f float64) Value { return Value{Kind: KindNum, Num: f} }

// Nil reports whether v is the nil (absent) value.
func (v Value) Nil() bool { return v.Kind == KindNil }

// Equal reports OPS5 equality: same kind and same atom.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindSym:
		return v.Sym == w.Sym
	case KindNum:
		return v.Num == w.Num
	default:
		return true // both nil
	}
}

// SameType implements the OPS5 <=> predicate: both symbolic or both
// numeric. Nil values have no type and satisfy <=> with nothing.
func (v Value) SameType(w Value) bool {
	return v.Kind != KindNil && v.Kind == w.Kind
}

// Compare orders two values. Numeric comparison applies when both are
// numbers; symbols compare lexicographically; otherwise ok is false
// (OPS5 relational predicates fail on mixed or nil operands).
func (v Value) Compare(w Value) (cmp int, ok bool) {
	switch {
	case v.Kind == KindNum && w.Kind == KindNum:
		switch {
		case v.Num < w.Num:
			return -1, true
		case v.Num > w.Num:
			return 1, true
		}
		return 0, true
	case v.Kind == KindSym && w.Kind == KindSym:
		return strings.Compare(v.Sym, w.Sym), true
	}
	return 0, false
}

// String renders the value in OPS5 source syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindSym:
		return v.Sym
	case KindNum:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return "nil"
	}
}

// Key returns a canonical encoding of the value, distinct across kinds,
// suitable for use as part of a hash key.
func (v Value) Key() string {
	switch v.Kind {
	case KindSym:
		return "s:" + v.Sym
	case KindNum:
		return "n:" + strconv.FormatFloat(v.Num, 'b', -1, 64)
	default:
		return "_"
	}
}

const fnvPrime64 = 1099511628211

// HashFNV folds the value's canonical Key() encoding into a running
// FNV-1a hash without materializing the string — the hot-path
// equivalent of hashing Key()'s bytes, producing identical hashes.
func (v Value) HashFNV(h uint64) uint64 {
	switch v.Kind {
	case KindSym:
		h = (h ^ 's') * fnvPrime64
		h = (h ^ ':') * fnvPrime64
		for i := 0; i < len(v.Sym); i++ {
			h = (h ^ uint64(v.Sym[i])) * fnvPrime64
		}
	case KindNum:
		h = (h ^ 'n') * fnvPrime64
		h = (h ^ ':') * fnvPrime64
		var buf [32]byte
		b := strconv.AppendFloat(buf[:0], v.Num, 'b', -1, 64)
		for i := 0; i < len(b); i++ {
			h = (h ^ uint64(b[i])) * fnvPrime64
		}
	default:
		h = (h ^ '_') * fnvPrime64
	}
	return h
}

// PredOp enumerates the OPS5 predicate operators.
type PredOp uint8

const (
	OpEq       PredOp = iota // =   (also implicit for bare constants/variables)
	OpNe                     // <>
	OpLt                     // <
	OpLe                     // <=
	OpGt                     // >
	OpGe                     // >=
	OpSameType               // <=>
)

var predNames = [...]string{"=", "<>", "<", "<=", ">", ">=", "<=>"}

// String returns the OPS5 spelling of the operator.
func (op PredOp) String() string {
	if int(op) < len(predNames) {
		return predNames[op]
	}
	return fmt.Sprintf("PredOp(%d)", uint8(op))
}

// Apply evaluates `a op b`. Relational operators require comparable
// (same-kind, non-nil) operands and are false otherwise, matching OPS5.
func (op PredOp) Apply(a, b Value) bool {
	switch op {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	case OpSameType:
		return a.SameType(b)
	}
	cmp, ok := a.Compare(b)
	if !ok {
		return false
	}
	switch op {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}
