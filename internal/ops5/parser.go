package ops5

import (
	"fmt"
)

// parser implements a recursive-descent parser over the lexer's tokens.
type parser struct {
	lex *lexer
	tok token // current token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return p.tok, p.errf("expected %s, found %s", k, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// ParseProgram parses OPS5 source text containing literalize
// declarations and productions.
func ParseProgram(src string) (*Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog := &Program{Literalizes: map[string][]string{}}
	for p.tok.kind != tokEOF {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		head, err := p.expect(tokSym)
		if err != nil {
			return nil, err
		}
		switch head.text {
		case "literalize":
			class, err := p.expect(tokSym)
			if err != nil {
				return nil, err
			}
			var attrs []string
			for p.tok.kind == tokSym {
				attrs = append(attrs, p.tok.text)
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			prog.Literalizes[class.text] = attrs
		case "p":
			prod, err := p.parseProduction()
			if err != nil {
				return nil, err
			}
			if err := prod.Validate(); err != nil {
				return nil, err
			}
			prog.Productions = append(prog.Productions, prod)
		default:
			return nil, p.errf("unknown top-level form %q (want literalize or p)", head.text)
		}
	}
	return prog, nil
}

// ParseProduction parses a single (p name ... --> ...) form.
func ParseProduction(src string) (*Production, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	head, err := p.expect(tokSym)
	if err != nil {
		return nil, err
	}
	if head.text != "p" {
		return nil, p.errf("expected (p ...), found (%s ...)", head.text)
	}
	prod, err := p.parseProduction()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input after production")
	}
	if err := prod.Validate(); err != nil {
		return nil, err
	}
	return prod, nil
}

// parseProduction parses the remainder of a production after "(p".
func (p *parser) parseProduction() (*Production, error) {
	name, err := p.expect(tokSym)
	if err != nil {
		return nil, err
	}
	prod := &Production{Name: name.text}
	for p.tok.kind != tokArrow {
		ce, err := p.parseCE()
		if err != nil {
			return nil, err
		}
		prod.LHS = append(prod.LHS, ce)
	}
	if err := p.advance(); err != nil { // consume -->
		return nil, err
	}
	for p.tok.kind != tokRParen {
		act, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		prod.RHS = append(prod.RHS, act)
	}
	return prod, p.advance() // consume ')'
}

func (p *parser) parseCE() (CE, error) {
	var ce CE
	if p.tok.kind == tokMinus {
		ce.Negated = true
		if err := p.advance(); err != nil {
			return ce, err
		}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return ce, err
	}
	class, err := p.expect(tokSym)
	if err != nil {
		return ce, err
	}
	ce.Class = class.text
	for p.tok.kind == tokAttr {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return ce, err
		}
		terms, err := p.parseTermGroup()
		if err != nil {
			return ce, err
		}
		ce.Tests = append(ce.Tests, AttrTest{Attr: attr, Terms: terms})
	}
	_, err = p.expect(tokRParen)
	return ce, err
}

// parseTermGroup parses a single term or a conjunctive {...} group.
func (p *parser) parseTermGroup() ([]Term, error) {
	if p.tok.kind == tokLBrace {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var terms []Term
		for p.tok.kind != tokRBrace {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
		}
		if len(terms) == 0 {
			return nil, p.errf("empty conjunctive test {}")
		}
		return terms, p.advance()
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return []Term{t}, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := Term{Op: OpEq}
	if p.tok.kind == tokPred {
		switch p.tok.text {
		case "=":
			t.Op = OpEq
		case "<>":
			t.Op = OpNe
		case "<":
			t.Op = OpLt
		case "<=":
			t.Op = OpLe
		case ">":
			t.Op = OpGt
		case ">=":
			t.Op = OpGe
		case "<=>":
			t.Op = OpSameType
		}
		if err := p.advance(); err != nil {
			return t, err
		}
	}
	switch p.tok.kind {
	case tokSym:
		v := S(p.tok.text)
		t.Const = &v
		return t, p.advance()
	case tokNum:
		v := N(p.tok.num)
		t.Const = &v
		return t, p.advance()
	case tokVar:
		t.Var = p.tok.text
		return t, p.advance()
	case tokDLAngle:
		if t.Op != OpEq {
			return t, p.errf("disjunction <<...>> cannot follow a predicate")
		}
		if err := p.advance(); err != nil {
			return t, err
		}
		for p.tok.kind != tokDRAngle {
			switch p.tok.kind {
			case tokSym:
				t.Disj = append(t.Disj, S(p.tok.text))
			case tokNum:
				t.Disj = append(t.Disj, N(p.tok.num))
			default:
				return t, p.errf("disjunction may contain only constants, found %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return t, err
			}
		}
		if len(t.Disj) == 0 {
			return t, p.errf("empty disjunction <<>>")
		}
		return t, p.advance()
	}
	return t, p.errf("expected a test operand, found %s", p.tok)
}

func (p *parser) parseAction() (Action, error) {
	var a Action
	if _, err := p.expect(tokLParen); err != nil {
		return a, err
	}
	head, err := p.expect(tokSym)
	if err != nil {
		return a, err
	}
	switch head.text {
	case "make":
		a.Kind = ActMake
		class, err := p.expect(tokSym)
		if err != nil {
			return a, err
		}
		a.Class = class.text
		if a.Assigns, err = p.parseAssigns(); err != nil {
			return a, err
		}
	case "remove":
		a.Kind = ActRemove
		for p.tok.kind == tokNum {
			a.CEIndexes = append(a.CEIndexes, int(p.tok.num))
			if err := p.advance(); err != nil {
				return a, err
			}
		}
		if len(a.CEIndexes) == 0 {
			return a, p.errf("remove requires at least one condition-element number")
		}
	case "modify":
		a.Kind = ActModify
		n, err := p.expect(tokNum)
		if err != nil {
			return a, err
		}
		a.CEIndexes = []int{int(n.num)}
		if a.Assigns, err = p.parseAssigns(); err != nil {
			return a, err
		}
	case "write":
		a.Kind = ActWrite
		for p.tok.kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return a, err
			}
			a.Args = append(a.Args, e)
		}
	case "bind":
		a.Kind = ActBind
		v, err := p.expect(tokVar)
		if err != nil {
			return a, err
		}
		a.Var = v.text
		if a.BindExpr, err = p.parseExpr(); err != nil {
			return a, err
		}
	case "excise":
		a.Kind = ActExcise
		name, err := p.expect(tokSym)
		if err != nil {
			return a, err
		}
		a.Class = name.text
	case "halt":
		a.Kind = ActHalt
	default:
		return a, p.errf("unknown action %q", head.text)
	}
	_, err = p.expect(tokRParen)
	return a, err
}

func (p *parser) parseAssigns() ([]AttrAssign, error) {
	var assigns []AttrAssign
	for p.tok.kind == tokAttr {
		attr := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, AttrAssign{Attr: attr, Expr: e})
	}
	return assigns, nil
}

// parseExpr parses an RHS value: constant, variable, or (compute ...).
func (p *parser) parseExpr() (Expr, error) {
	switch p.tok.kind {
	case tokSym:
		v := S(p.tok.text)
		return Expr{Const: &v}, p.advance()
	case tokNum:
		v := N(p.tok.num)
		return Expr{Const: &v}, p.advance()
	case tokVar:
		name := p.tok.text
		return Expr{Var: name}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return Expr{}, err
		}
		head, err := p.expect(tokSym)
		if err != nil {
			return Expr{}, err
		}
		switch head.text {
		case "compute":
			return p.parseCompute()
		case "crlf":
			// (crlf) is a write-action marker that prints a newline; it
			// is represented as the distinguished symbol "(crlf)".
			if _, err := p.expect(tokRParen); err != nil {
				return Expr{}, err
			}
			v := Crlf
			return Expr{Const: &v}, nil
		default:
			return Expr{}, p.errf("unknown value form (%s ...)", head.text)
		}
	}
	return Expr{}, p.errf("expected a value, found %s", p.tok)
}

// parseCompute parses the operand/operator chain of a compute form up
// to the closing ')'.
func (p *parser) parseCompute() (Expr, error) {
	var e Expr
	operand, err := p.parseExpr()
	if err != nil {
		return e, err
	}
	e.Operands = append(e.Operands, operand)
	for p.tok.kind != tokRParen {
		var op ExprOp
		switch {
		case p.tok.kind == tokMinus:
			op = ExprSub
		case p.tok.kind == tokSym && p.tok.text == "+":
			op = ExprAdd
		case p.tok.kind == tokSym && p.tok.text == "*":
			op = ExprMul
		case p.tok.kind == tokSym && p.tok.text == "//":
			op = ExprDiv
		case p.tok.kind == tokSym && p.tok.text == "mod":
			op = ExprMod
		default:
			return e, p.errf("expected arithmetic operator, found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return e, err
		}
		operand, err := p.parseExpr()
		if err != nil {
			return e, err
		}
		e.Ops = append(e.Ops, op)
		e.Operands = append(e.Operands, operand)
	}
	if err := p.advance(); err != nil { // consume ')'
		return e, err
	}
	if len(e.Operands) == 1 {
		return e.Operands[0], nil
	}
	return e, nil
}

// ParseWMEs parses a sequence of (class ^attr value ...) forms into
// wmes. Values must be constants. Intended for test fixtures and
// initial working-memory files.
func ParseWMEs(src string) ([]*WME, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var wmes []*WME
	for p.tok.kind != tokEOF {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		class, err := p.expect(tokSym)
		if err != nil {
			return nil, err
		}
		w := &WME{Class: class.text, Attrs: map[string]Value{}}
		for p.tok.kind == tokAttr {
			attr := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokSym:
				w.Attrs[attr] = S(p.tok.text)
			case tokNum:
				w.Attrs[attr] = N(p.tok.num)
			default:
				return nil, p.errf("wme attribute ^%s requires a constant, found %s", attr, p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		wmes = append(wmes, w)
	}
	return wmes, nil
}
