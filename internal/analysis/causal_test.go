package analysis

import (
	"testing"

	"mpcrete/internal/obs"
)

// syntheticDump builds a two-worker dump with a broadcast and a
// cross-worker activation chain:
//
//	control: send(b1, broadcast) ................. cycle markers
//	worker0: recv(b1) handle(d1,fan1) send(b2->w1) flush
//	worker1: recv(b1) recv(b2) handle(d2,fan0)
func syntheticDump() *obs.FlightDump {
	c := obs.NewCausalRecorder(3, 64, 8, 16)
	c.SetTrackName(0, "worker 0")
	c.SetTrackName(1, "worker 1")
	c.SetTrackName(2, "control")
	c.BeginCycle(1, 0)
	b1 := c.NextBatch()
	c.Track(2).Send(10, 1, b1, obs.BroadcastDst, 2)
	c.Track(0).Recv(20, 1, b1, 2, 1)
	c.Track(1).Recv(22, 1, b1, 2, 1)
	c.Track(0).Handle(25, 1, 3, 1, 1)
	b2 := c.NextBatch()
	c.Track(0).Send(30, 1, b2, 1, 1)
	c.Track(0).Flush(31, 1, 1)
	c.Track(1).Recv(40, 1, b2, 0, 1)
	c.Track(1).Handle(45, 1, 7, 2, 0)
	c.EndCycle(1, 50)
	return c.Dump()
}

func TestBuildHBGraph(t *testing.T) {
	g := BuildHB(syntheticDump())
	if len(g.Nodes) == 0 {
		t.Fatal("empty graph")
	}
	if g.Dangling != 0 {
		t.Fatalf("dangling recvs = %d, want 0", g.Dangling)
	}
	var msgEdges, progEdges int
	for _, e := range g.Edges {
		switch e.Kind {
		case MessageEdge:
			msgEdges++
			from, to := g.Nodes[e.From], g.Nodes[e.To]
			if from.Event.Kind != obs.EvSend || to.Event.Kind != obs.EvRecv {
				t.Fatalf("message edge %v -> %v not send->recv", from.Event.Kind, to.Event.Kind)
			}
			if from.Event.Batch != to.Event.Batch {
				t.Fatalf("message edge stamps differ: %d vs %d", from.Event.Batch, to.Event.Batch)
			}
		case ProgramEdge:
			progEdges++
			if g.Nodes[e.From].Track != g.Nodes[e.To].Track {
				t.Fatal("program edge crosses tracks")
			}
		}
	}
	// b1 broadcast -> two recvs, b2 -> one recv.
	if msgEdges != 3 {
		t.Fatalf("message edges = %d, want 3", msgEdges)
	}
	if progEdges == 0 {
		t.Fatal("no program-order edges")
	}

	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("happens-before graph not acyclic: %v", err)
	}
	chain, err := g.LongestChain()
	if err != nil {
		t.Fatal(err)
	}
	// send(b1) -> recv(b1)@w0 -> handle -> send(b2) -> flush is 5 on
	// program order alone; via message edge to w1: recv(b2) -> handle
	// adds 2 more.
	if chain < 6 {
		t.Fatalf("LongestChain = %d, want >= 6", chain)
	}
}

func TestHBGraphDanglingRecv(t *testing.T) {
	c := obs.NewCausalRecorder(2, 64, 8, 0)
	// A recv whose send stamp was never recorded (evicted or foreign).
	c.Track(0).Recv(5, 1, 999, 1, 1)
	g := BuildHB(c.Dump())
	if g.Dangling != 1 {
		t.Fatalf("Dangling = %d, want 1", g.Dangling)
	}
}

func TestCausalSeries(t *testing.T) {
	s := CausalSeriesFrom(syntheticDump())

	if len(s.MeasuredCritPaths) != 1 {
		t.Fatalf("MeasuredCritPaths = %+v", s.MeasuredCritPaths)
	}
	if got := s.MeasuredCritPaths[0]; got.Cycle != 1 || got.Depth != 2 {
		t.Fatalf("cycle path = %+v, want {1 2}", got)
	}

	if s.WorkerHandles[0] != 1 || s.WorkerHandles[1] != 1 || s.WorkerHandles[2] != 0 {
		t.Fatalf("WorkerHandles = %v", s.WorkerHandles)
	}

	wantLoads := []obs.BucketLoad{{Bucket: 3, Count: 1}, {Bucket: 7, Count: 1}}
	if len(s.BucketLoads) != 2 || s.BucketLoads[0] != wantLoads[0] || s.BucketLoads[1] != wantLoads[1] {
		t.Fatalf("BucketLoads = %+v, want %+v", s.BucketLoads, wantLoads)
	}

	// Three stitched recvs: b1@w0 (wait 10), b1@w1 (wait 12), b2@w1
	// (wait 10).
	if len(s.QueueWaits) != 3 {
		t.Fatalf("QueueWaits = %+v", s.QueueWaits)
	}
	waits := map[int64]int{}
	for _, q := range s.QueueWaits {
		if q.WaitNS < 0 {
			t.Fatalf("negative queue wait: %+v", q)
		}
		waits[q.WaitNS]++
	}
	if waits[10] != 2 || waits[12] != 1 {
		t.Fatalf("waits = %v", waits)
	}

	// Fan-outs: one handle with fanout 1, one with fanout 0.
	if len(s.Fanouts) != 2 || s.Fanouts[0] != 1 || s.Fanouts[1] != 1 {
		t.Fatalf("Fanouts = %v", s.Fanouts)
	}

	hot := s.HotBuckets(1)
	if len(hot) != 1 || hot[0].Bucket != 3 {
		t.Fatalf("HotBuckets = %+v", hot)
	}
}
