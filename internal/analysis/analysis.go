// Package analysis automates the Section 5.2 diagnosis the paper
// performs by hand: given a hash-table activity trace it detects the
// known parallelism pathologies — non-discriminating (cross-product)
// nodes whose tokens pile onto one bucket, multiple-successor
// bottlenecks, the multiple-modify effect, small cycles, and per-cycle
// bucket-distribution imbalance — and proposes the countermeasure the
// paper applies to each: copy-and-constraint, unsharing/dummy nodes,
// single-processor clustering, or better static distribution. AutoTune
// applies the trace-level transformations and reports the result.
package analysis

import (
	"fmt"
	"io"
	"sort"

	"mpcrete/internal/stats"
	"mpcrete/internal/trace"
)

// Options tune the detectors' thresholds.
type Options struct {
	// HotBucketShare flags a node when one bucket carries at least
	// this fraction of the node's activations (and more than
	// HotBucketMin of them). Default 0.8 / 64.
	HotBucketShare float64
	HotBucketMin   int
	// FanoutThreshold flags activations generating more successors
	// than this. Default 16.
	FanoutThreshold int
	// SmallCycleMax is the paper's bound on "small" cycles (100 or
	// fewer tokens). Default 100.
	SmallCycleMax int
	// ImbalanceCV flags cycles whose per-bucket load has a coefficient
	// of variation above this. Default 2.
	ImbalanceCV float64
}

func (o *Options) defaults() {
	if o.HotBucketShare == 0 {
		o.HotBucketShare = 0.8
	}
	if o.HotBucketMin == 0 {
		o.HotBucketMin = 64
	}
	if o.FanoutThreshold == 0 {
		o.FanoutThreshold = 16
	}
	if o.SmallCycleMax == 0 {
		o.SmallCycleMax = 100
	}
	if o.ImbalanceCV == 0 {
		o.ImbalanceCV = 2
	}
}

// CycleReport summarizes one cycle.
type CycleReport struct {
	Index       int
	Activations int
	Lefts       int
	Rights      int
	// MaxBucketLoad is the busiest bucket's activation count.
	MaxBucketLoad int
	// BucketCV is the coefficient of variation of per-active-bucket
	// load.
	BucketCV float64
	Small    bool
}

// HotNode is a cross-product suspect: a node most of whose activations
// hash to a single bucket.
type HotNode struct {
	Node        int
	Bucket      int
	Activations int
	Share       float64
}

// FanoutSite is a multiple-successor bottleneck.
type FanoutSite struct {
	Node      int
	MaxFanout int
	// Sites is the number of activations exceeding the threshold.
	Sites int
	// Generated is the number of successors those activations produce.
	Generated int
}

// ModifyEffect reports balanced add/delete waves at one node-bucket
// site — the paper's hitherto-unsuspected multiple-modify effect.
type ModifyEffect struct {
	Node    int
	Bucket  int
	Adds    int
	Deletes int
}

// SuggestionKind enumerates countermeasures.
type SuggestionKind uint8

const (
	// SuggestCopyAndConstrain splits a cross-product node's bucket
	// stream k ways (Section 5.2.2).
	SuggestCopyAndConstrain SuggestionKind = iota
	// SuggestUnshare splits high-fan-out successor generation
	// (Section 5.2.1, Fig 5-3; dummy nodes are the same remedy).
	SuggestUnshare
	// SuggestCluster processes a small cycle's tokens on one processor
	// to avoid communication (Section 5.2.1, final remark).
	SuggestCluster
	// SuggestRedistribute recommends a better static bucket
	// distribution for imbalanced cycles (Section 5.2.2 greedy).
	SuggestRedistribute
	// SuggestBoundedJoins recommends recompiling with the
	// worst-case-bounded variant (rete.CompileOptions.BoundedJoins):
	// cross-product nodes stop existing because no partial
	// instantiations are materialized at all. Compile-level — AutoTune
	// reports it but cannot apply it to a trace.
	SuggestBoundedJoins
)

var suggestionNames = [...]string{"copy-and-constraint", "unshare", "cluster-on-one-processor", "redistribute-buckets", "bounded-joins"}

// String names the suggestion.
func (k SuggestionKind) String() string { return suggestionNames[k] }

// Suggestion is one recommended countermeasure.
type Suggestion struct {
	Kind   SuggestionKind
	Node   int // target node (copy-and-constraint, unshare)
	Cycle  int // target cycle (cluster, redistribute)
	K      int // split factor where applicable
	Reason string
}

// Report is the full analysis result.
type Report struct {
	Trace         string
	Cycles        []CycleReport
	HotNodes      []HotNode
	Fanouts       []FanoutSite
	ModifyEffects []ModifyEffect
	Suggestions   []Suggestion
}

// Analyze runs all detectors over a trace.
func Analyze(tr *trace.Trace, opts Options) *Report {
	opts.defaults()
	r := &Report{Trace: tr.Name}

	type nodeBucket struct{ node, bucket int }
	nodeTotal := map[int]int{}
	siteCount := map[nodeBucket]int{}
	siteAdds := map[nodeBucket]int{}
	siteDels := map[nodeBucket]int{}
	fanouts := map[int]*FanoutSite{}

	for ci, cy := range tr.Cycles {
		cr := CycleReport{Index: ci}
		bucketLoad := map[int]int{}
		cy.Walk(func(a *trace.Activation) {
			cr.Activations++
			if a.Side == trace.LeftSide {
				cr.Lefts++
			} else {
				cr.Rights++
			}
			bucketLoad[a.Bucket]++
			nodeTotal[a.Node]++
			nb := nodeBucket{a.Node, a.Bucket}
			siteCount[nb]++
			if a.Tag == trace.AddTag {
				siteAdds[nb]++
			} else {
				siteDels[nb]++
			}
			if n := a.Successors(); n > opts.FanoutThreshold {
				fs := fanouts[a.Node]
				if fs == nil {
					fs = &FanoutSite{Node: a.Node}
					fanouts[a.Node] = fs
				}
				fs.Sites++
				fs.Generated += n
				if n > fs.MaxFanout {
					fs.MaxFanout = n
				}
			}
		})
		loads := make([]int, 0, len(bucketLoad))
		for _, l := range bucketLoad {
			loads = append(loads, l)
		}
		cr.MaxBucketLoad = stats.Max(loads)
		cr.BucketCV = stats.CV(loads)
		cr.Small = cr.Activations > 0 && cr.Activations <= opts.SmallCycleMax
		r.Cycles = append(r.Cycles, cr)
	}

	// Hot (cross-product) nodes.
	for nb, count := range siteCount {
		total := nodeTotal[nb.node]
		share := float64(count) / float64(total)
		if count >= opts.HotBucketMin && share >= opts.HotBucketShare && total >= opts.HotBucketMin {
			r.HotNodes = append(r.HotNodes, HotNode{
				Node: nb.node, Bucket: nb.bucket, Activations: count, Share: share,
			})
			if siteAdds[nb] > 0 && siteDels[nb] > 0 && ratioNear(siteAdds[nb], siteDels[nb], 0.5) {
				r.ModifyEffects = append(r.ModifyEffects, ModifyEffect{
					Node: nb.node, Bucket: nb.bucket, Adds: siteAdds[nb], Deletes: siteDels[nb],
				})
			}
		}
	}
	sort.Slice(r.HotNodes, func(i, j int) bool { return r.HotNodes[i].Activations > r.HotNodes[j].Activations })
	sort.Slice(r.ModifyEffects, func(i, j int) bool { return r.ModifyEffects[i].Adds > r.ModifyEffects[j].Adds })

	for _, fs := range fanouts {
		r.Fanouts = append(r.Fanouts, *fs)
	}
	sort.Slice(r.Fanouts, func(i, j int) bool { return r.Fanouts[i].MaxFanout > r.Fanouts[j].MaxFanout })

	r.suggest(opts)
	return r
}

// ratioNear reports whether a/(a+b) is within 0.15 of target.
func ratioNear(a, b int, target float64) bool {
	ratio := float64(a) / float64(a+b)
	d := ratio - target
	return d < 0.15 && d > -0.15
}

// suggest derives countermeasures from the detections.
func (r *Report) suggest(opts Options) {
	for _, hn := range r.HotNodes {
		k := 8
		r.Suggestions = append(r.Suggestions, Suggestion{
			Kind: SuggestCopyAndConstrain,
			Node: hn.Node,
			K:    k,
			Reason: fmt.Sprintf("node %d sends %.0f%% of its %d activations to bucket %d (no hash discrimination)",
				hn.Node, 100*hn.Share, hn.Activations, hn.Bucket),
		})
		r.Suggestions = append(r.Suggestions, Suggestion{
			Kind: SuggestBoundedJoins,
			Node: hn.Node,
			Reason: fmt.Sprintf("node %d is a cross-product suspect: recompile with -variant bounded to avoid materializing its beta memory",
				hn.Node),
		})
	}
	for _, fs := range r.Fanouts {
		r.Suggestions = append(r.Suggestions, Suggestion{
			Kind: SuggestUnshare,
			Node: fs.Node,
			K:    4,
			Reason: fmt.Sprintf("node %d generates up to %d successors from one site (%d tokens over %d activations)",
				fs.Node, fs.MaxFanout, fs.Generated, fs.Sites),
		})
	}
	for _, cr := range r.Cycles {
		if cr.Small && cr.Lefts > cr.Rights {
			r.Suggestions = append(r.Suggestions, Suggestion{
				Kind:  SuggestCluster,
				Cycle: cr.Index,
				Reason: fmt.Sprintf("cycle %d is small (%d tokens, %d left): communication overheads dominate",
					cr.Index, cr.Activations, cr.Lefts),
			})
		} else if cr.BucketCV > opts.ImbalanceCV && cr.MaxBucketLoad < cr.Activations/2 {
			r.Suggestions = append(r.Suggestions, Suggestion{
				Kind:  SuggestRedistribute,
				Cycle: cr.Index,
				Reason: fmt.Sprintf("cycle %d bucket load CV %.1f: active buckets cluster on few processors",
					cr.Index, cr.BucketCV),
			})
		}
	}
}

// AutoTune applies the trace-level countermeasures the report calls
// for (copy-and-constraint on hot nodes, fan-out splitting) and
// returns the transformed trace. Cluster and redistribute suggestions
// are scheduling-level and reported only.
func AutoTune(tr *trace.Trace, opts Options) (*trace.Trace, *Report) {
	opts.defaults()
	r := Analyze(tr, opts)
	out := tr
	for _, s := range r.Suggestions {
		switch s.Kind {
		case SuggestCopyAndConstrain:
			out = trace.ScatterNode(out, s.Node, s.K)
		case SuggestUnshare:
			out = trace.SplitFanout(out, opts.FanoutThreshold, s.K)
		}
	}
	if out != tr {
		out.Name = tr.Name + "+tuned"
	}
	return out, r
}

// Render prints the report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "analysis of %s\n", r.Trace)
	rows := [][]string{{"cycle", "acts", "left", "right", "max-bucket", "cv", "small"}}
	for _, c := range r.Cycles {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Index),
			fmt.Sprintf("%d", c.Activations),
			fmt.Sprintf("%d", c.Lefts),
			fmt.Sprintf("%d", c.Rights),
			fmt.Sprintf("%d", c.MaxBucketLoad),
			fmt.Sprintf("%.2f", c.BucketCV),
			fmt.Sprintf("%v", c.Small),
		})
	}
	stats.Table(w, rows)
	if len(r.HotNodes) > 0 {
		fmt.Fprintln(w, "\ncross-product (non-discriminating) nodes:")
		for _, hn := range r.HotNodes {
			fmt.Fprintf(w, "  node %d: %d activations, %.0f%% at bucket %d\n", hn.Node, hn.Activations, 100*hn.Share, hn.Bucket)
		}
	}
	if len(r.ModifyEffects) > 0 {
		fmt.Fprintln(w, "\nmultiple-modify effects:")
		for _, me := range r.ModifyEffects {
			fmt.Fprintf(w, "  node %d bucket %d: %d adds / %d deletes\n", me.Node, me.Bucket, me.Adds, me.Deletes)
		}
	}
	if len(r.Fanouts) > 0 {
		fmt.Fprintln(w, "\nmultiple-successor bottlenecks:")
		for _, fs := range r.Fanouts {
			fmt.Fprintf(w, "  node %d: max fan-out %d (%d sites, %d tokens)\n", fs.Node, fs.MaxFanout, fs.Sites, fs.Generated)
		}
	}
	if len(r.Suggestions) > 0 {
		fmt.Fprintln(w, "\nsuggestions:")
		for _, s := range r.Suggestions {
			fmt.Fprintf(w, "  %s: %s\n", s.Kind, s.Reason)
		}
	}
}
