package analysis

import (
	"encoding/json"
	"fmt"
	"io"

	"mpcrete/internal/core"
	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/workloads"
)

// Model-vs-measured validation: run one OPS5 workload through both
// halves of the codebase and put the numbers side by side.
//
//	sequential engine + trace recorder ──► trace ──► simnet model  (predicted)
//	                │
//	                └─► same engine loop over internal/parallel     (measured)
//	                    with the flight recorder attached
//
// The paper only ever had the left column — its results are simulated.
// This report is the missing right column: the QCDSP-style check that
// the cost model's per-cycle predictions line up with what a real
// message-passing runtime does on the same workload, and the
// calibration substrate the multi-node transport (ROADMAP item 3)
// validates against.
//
// The two columns measure different clocks — the model charges the
// paper's mid-1980s per-activation microsecond costs while the runtime
// spends real nanoseconds on a shared-memory goroutine machine — so
// cycle *times* are compared shape-wise, not absolutely. Structural
// quantities are directly comparable: the measured critical path (in
// dependent activation steps) is bounded below by CriticalPath on the
// recorded trace, and because both sides walk the same activation
// forest with the same counting rule it should be exactly equal.
// Message counts are reported side by side but count different things
// (the model ships every remote token and instantiation as a message;
// the runtime coalesces and keeps instantiation delivery in-process).

// MMOptions configure a model-vs-measured comparison.
type MMOptions struct {
	// Workers is the parallel worker count and the model's MatchProcs
	// (default 4).
	Workers int
	// MaxCycles caps the MRA cycles of both runs (default 200).
	MaxCycles int
	// RouteRoots selects the Fig 3-2 message plane for the measured
	// run.
	RouteRoots bool
	// Overhead is the model's message-overhead setting (default
	// core.OverheadRuns()[1], the 5/3 µs Nectar-class point).
	Overhead *core.OverheadSetting
	// RingCap / RetainCycles size the flight recorder (defaults:
	// obs.DefaultRingCap, and retention covering every recorded
	// cycle so the report is complete).
	RingCap      int
	RetainCycles int
	// ChaosSeed perturbs the measured run's scheduling (0 = off).
	ChaosSeed int64
	// Transport, when non-nil, is called with the compiled network to
	// supply the measured run's message plane (e.g. the loopback TCP
	// transport in internal/transport, so measured per-message costs
	// include real serialization and socket hops). Nil uses the
	// in-process reference endpoints.
	Transport func(*rete.Network) parallel.Transport
}

// MMRow is one cycle of the side-by-side comparison.
type MMRow struct {
	Cycle int `json:"cycle"`
	// PredictedUS is the model's simulated cycle time; MeasuredUS the
	// runtime's wall-clock cycle time. Different clocks — compare
	// shapes, not magnitudes.
	PredictedUS float64 `json:"predicted_us"`
	MeasuredUS  float64 `json:"measured_us"`
	// PredictedMsgs counts simulated message deliveries; MeasuredMsgs
	// counts coalesced runtime messages.
	PredictedMsgs int   `json:"predicted_msgs"`
	MeasuredMsgs  int64 `json:"measured_msgs"`
	// PredictedActs / MeasuredHandles count node activations processed
	// (directly comparable; the trace replay and the live match walk
	// the same forest).
	PredictedActs   int   `json:"predicted_acts"`
	MeasuredHandles int64 `json:"measured_handles"`
	// CritPathBound is CriticalPath on the recorded trace cycle — the
	// lower bound no machine can beat. MeasuredCritPath is the deepest
	// dependency chain the instrumented runtime observed.
	CritPathBound    int   `json:"critpath_bound"`
	MeasuredCritPath int32 `json:"measured_critpath"`
}

// MMReport is the full comparison.
type MMReport struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers"`
	Routed   bool    `json:"routed"`
	Overhead string  `json:"overhead"`
	Rows     []MMRow `json:"rows"`
	// PredictedMakespanUS / MeasuredMakespanUS sum the per-cycle
	// columns.
	PredictedMakespanUS float64 `json:"predicted_makespan_us"`
	MeasuredMakespanUS  float64 `json:"measured_makespan_us"`
	// PredictedInsts / MeasuredInsts count instantiation deliveries
	// (model: messages to control; runtime: deltas before netting).
	PredictedInsts int   `json:"predicted_insts"`
	MeasuredInsts  int64 `json:"measured_insts"`
	// Fired is the engine-level firing count, identical on both runs
	// by construction (checked).
	Fired int `json:"fired"`

	// Dump is the measured run's flight-recorder dump (omitted from
	// JSON; export it separately with Dump.WriteJSON).
	Dump *obs.FlightDump `json:"-"`
}

// CheckCritPathBound verifies the acceptance invariant: on every
// compared cycle the measured critical path is at least the trace
// lower bound.
func (r *MMReport) CheckCritPathBound() error {
	for _, row := range r.Rows {
		if int(row.MeasuredCritPath) < row.CritPathBound {
			return fmt.Errorf("analysis: cycle %d measured critical path %d below trace bound %d",
				row.Cycle, row.MeasuredCritPath, row.CritPathBound)
		}
	}
	return nil
}

// CompareModelMeasured runs the named OPS5 workload through the
// sequential engine (recording a trace), replays the trace through the
// simulator (predicted), runs the same workload through the
// instrumented parallel runtime (measured), and aligns the two per
// cycle.
func CompareModelMeasured(name, progSrc, wmeSrc string, opts MMOptions) (*MMReport, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.MaxCycles <= 0 {
		opts.MaxCycles = 200
	}
	overhead := core.OverheadRuns()[1]
	if opts.Overhead != nil {
		overhead = *opts.Overhead
	}

	// 1. Sequential instrumented run -> trace.
	tr, seqEng, err := workloads.RecordRun(name, progSrc, wmeSrc, opts.MaxCycles)
	if err != nil {
		return nil, err
	}
	if len(tr.Cycles) == 0 {
		return nil, fmt.Errorf("analysis: %s recorded no cycles", name)
	}

	// 2. Predicted: replay the trace through the cost model.
	pred, err := core.Simulate(tr, core.NewConfig(opts.Workers, core.WithOverhead(overhead)))
	if err != nil {
		return nil, err
	}
	bounds := CriticalPaths(tr)

	// 3. Measured: same workload through the instrumented parallel
	// runtime, driven by an identical engine loop.
	retain := opts.RetainCycles
	if retain <= 0 {
		retain = len(tr.Cycles) + 1
	}
	prog, err := ops5.ParseProgram(progSrc)
	if err != nil {
		return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		return nil, fmt.Errorf("analysis: compile %s: %w", name, err)
	}
	cr := parallel.NewFlightRecorder(opts.Workers, opts.RingCap, retain, tr.NBuckets)
	popts := parallel.Options{
		Workers:    opts.Workers,
		NBuckets:   tr.NBuckets,
		RouteRoots: opts.RouteRoots,
		ChaosSeed:  opts.ChaosSeed,
		Causal:     cr,
	}
	if opts.Transport != nil {
		popts.Transport = opts.Transport(net)
	}
	rt, err := parallel.New(net, popts)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	parEng, err := engine.NewWithNetwork(prog, net, engine.Options{Matcher: rt})
	if err != nil {
		return nil, fmt.Errorf("analysis: engine for %s: %w", name, err)
	}
	wmes, err := ops5.ParseWMEs(wmeSrc)
	if err != nil {
		return nil, fmt.Errorf("analysis: wmes for %s: %w", name, err)
	}
	parEng.InsertWMEs(wmes...)
	if _, err := parEng.Run(opts.MaxCycles); err != nil && err != engine.ErrCycleLimit {
		return nil, fmt.Errorf("analysis: parallel run %s: %w", name, err)
	}
	stats := rt.Stats()
	dump := rt.FlightDump()

	// 4. Sanity: both engines executed the same MRA trajectory.
	if seqEng.Fired() != parEng.Fired() {
		return nil, fmt.Errorf("analysis: %s fired %d sequentially but %d in parallel — runs not comparable",
			name, seqEng.Fired(), parEng.Fired())
	}
	if len(dump.Cycles) != len(tr.Cycles) {
		return nil, fmt.Errorf("analysis: %s trace has %d cycles, flight recorder retained %d — raise RetainCycles",
			name, len(tr.Cycles), len(dump.Cycles))
	}

	// 5. Align cycle i: trace cycle i (0-based) is runtime cycle i+1.
	rep := &MMReport{
		Name: name, Workers: opts.Workers, Routed: opts.RouteRoots,
		Overhead: overhead.Name, Dump: dump,
		PredictedInsts: pred.Insts, MeasuredInsts: stats.Insts,
		Fired: seqEng.Fired(),
	}
	for i, rec := range dump.Cycles {
		if int(rec.Cycle) != i+1 {
			return nil, fmt.Errorf("analysis: cycle record %d carries cycle id %d — retention window slid", i, rec.Cycle)
		}
		agg := rec.Total()
		acts := 0
		for _, n := range pred.ActsPerSlot[i] {
			acts += n
		}
		rep.Rows = append(rep.Rows, MMRow{
			Cycle:            i + 1,
			PredictedUS:      pred.CycleTimes[i].Microseconds(),
			MeasuredUS:       float64(rec.WallNS) / 1e3,
			PredictedMsgs:    pred.MsgsPerCycle[i],
			MeasuredMsgs:     agg.Sends,
			PredictedActs:    acts,
			MeasuredHandles:  agg.Handles,
			CritPathBound:    bounds[i],
			MeasuredCritPath: agg.MaxDepth,
		})
		rep.PredictedMakespanUS += pred.CycleTimes[i].Microseconds()
		rep.MeasuredMakespanUS += float64(rec.WallNS) / 1e3
	}
	return rep, nil
}

// WriteJSON exports the report (without the dump).
func (r *MMReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV exports the per-cycle rows.
func (r *MMReport) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,predicted_us,measured_us,predicted_msgs,measured_msgs,predicted_acts,measured_handles,critpath_bound,measured_critpath"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%d,%d,%d,%d,%d,%d\n",
			row.Cycle, row.PredictedUS, row.MeasuredUS, row.PredictedMsgs, row.MeasuredMsgs,
			row.PredictedActs, row.MeasuredHandles, row.CritPathBound, row.MeasuredCritPath); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the human-readable table.
func (r *MMReport) Render(w io.Writer) error {
	mode := "broadcast"
	if r.Routed {
		mode = "routed"
	}
	fmt.Fprintf(w, "model vs measured: %s (workers=%d, %s, overhead=%s)\n", r.Name, r.Workers, mode, r.Overhead)
	fmt.Fprintf(w, "%5s  %12s  %12s  %9s  %9s  %9s  %9s  %7s  %7s\n",
		"cycle", "pred µs", "meas µs", "pred msg", "meas msg", "pred act", "meas act", "cp bnd", "cp meas")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d  %12.1f  %12.1f  %9d  %9d  %9d  %9d  %7d  %7d\n",
			row.Cycle, row.PredictedUS, row.MeasuredUS, row.PredictedMsgs, row.MeasuredMsgs,
			row.PredictedActs, row.MeasuredHandles, row.CritPathBound, row.MeasuredCritPath)
	}
	fmt.Fprintf(w, "makespan: predicted %.1f µs, measured %.1f µs; insts: predicted %d, measured %d; fired %d\n",
		r.PredictedMakespanUS, r.MeasuredMakespanUS, r.PredictedInsts, r.MeasuredInsts, r.Fired)
	if err := r.CheckCritPathBound(); err != nil {
		fmt.Fprintf(w, "WARNING: %v\n", err)
	} else {
		fmt.Fprintln(w, "critical path: measured >= trace bound on every cycle")
	}
	return nil
}
