package analysis

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mpcrete/internal/core"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

func TestAnalyzeTourneyFindsCrossProduct(t *testing.T) {
	r := Analyze(workloads.Tourney(), Options{})
	if len(r.HotNodes) == 0 {
		t.Fatal("no hot nodes detected")
	}
	hn := r.HotNodes[0]
	if hn.Node != workloads.TourneyHotNode || hn.Bucket != workloads.TourneyHotBucket {
		t.Errorf("hot node = %+v, want node %d bucket %d", hn, workloads.TourneyHotNode, workloads.TourneyHotBucket)
	}
	if hn.Share < 0.95 {
		t.Errorf("share = %v", hn.Share)
	}
	// The multiple-modify effect at the same site.
	if len(r.ModifyEffects) == 0 {
		t.Fatal("multiple-modify effect not detected")
	}
	if me := r.ModifyEffects[0]; me.Node != workloads.TourneyHotNode {
		t.Errorf("modify effect = %+v", me)
	}
	// A copy-and-constraint suggestion targets the hot node, and the
	// bounded-joins recompile is offered as its compile-level
	// alternative.
	var candc, bounded bool
	for _, s := range r.Suggestions {
		if s.Kind == SuggestCopyAndConstrain && s.Node == workloads.TourneyHotNode {
			candc = true
		}
		if s.Kind == SuggestBoundedJoins && s.Node == workloads.TourneyHotNode {
			bounded = true
		}
	}
	if !candc {
		t.Errorf("no copy-and-constraint suggestion in %v", r.Suggestions)
	}
	if !bounded {
		t.Errorf("no bounded-joins suggestion in %v", r.Suggestions)
	}
}

func TestAnalyzeWeaverFindsFanoutAndSmallCycles(t *testing.T) {
	r := Analyze(workloads.Weaver(), Options{})
	if len(r.Fanouts) == 0 {
		t.Fatal("fan-out bottleneck not detected")
	}
	if r.Fanouts[0].MaxFanout != 40 {
		t.Errorf("max fanout = %d, want 40", r.Fanouts[0].MaxFanout)
	}
	smalls := 0
	for _, c := range r.Cycles {
		if c.Small {
			smalls++
		}
	}
	// Cycles 0, 2, 3 are ≤100 tokens; the hot cycle (~150) exceeds the
	// paper's small-cycle bound.
	if smalls != 3 {
		t.Errorf("small cycles = %d, want 3", smalls)
	}
	if r.Cycles[1].Small {
		t.Error("the hot cycle should not be flagged small")
	}
	unshare, cluster := false, false
	for _, s := range r.Suggestions {
		switch s.Kind {
		case SuggestUnshare:
			unshare = true
		case SuggestCluster:
			cluster = true
		}
	}
	if !unshare || !cluster {
		t.Errorf("want unshare and cluster suggestions, got %v", r.Suggestions)
	}
}

func TestAnalyzeRubikFindsImbalanceNotCrossProduct(t *testing.T) {
	r := Analyze(workloads.Rubik(), Options{})
	if len(r.HotNodes) != 0 {
		t.Errorf("rubik should have no cross-product nodes, got %v", r.HotNodes)
	}
	if len(r.Fanouts) != 0 {
		t.Errorf("rubik should have no fan-out bottlenecks, got %v", r.Fanouts)
	}
	// The left-cluster imbalance shows up as redistribute suggestions.
	redistributes := 0
	for _, s := range r.Suggestions {
		if s.Kind == SuggestRedistribute {
			redistributes++
		}
	}
	if redistributes == 0 {
		t.Errorf("no redistribute suggestion for rubik's clustered lefts: %v", r.Suggestions)
	}
}

func TestAutoTuneImprovesSimulatedSpeedup(t *testing.T) {
	for _, gen := range []func() *trace.Trace{workloads.Tourney, workloads.Weaver} {
		tr := gen()
		tuned, report := AutoTune(tr, Options{})
		if tuned == tr {
			t.Fatalf("%s: autotune did not transform", tr.Name)
		}
		if err := tuned.Validate(); err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{
			MatchProcs: 32,
			Costs:      core.DefaultCosts(),
			Overhead:   core.OverheadRuns()[1],
			Latency:    core.NectarLatency(),
		}
		base, _, _, err := core.Speedup(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		after, _, _, err := core.Speedup(tuned, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if after <= base {
			t.Errorf("%s: autotune %.2f -> %.2f, want improvement (report: %+v)", tr.Name, base, after, report.Suggestions)
		}
	}
}

func TestAutoTuneLeavesCleanTraceAlone(t *testing.T) {
	// A trace with no hot nodes or fan-out sites is returned as-is.
	tr := &trace.Trace{
		Name:     "clean",
		NBuckets: 64,
		Cycles: []*trace.Cycle{{
			Changes: 1,
			Roots: []*trace.Activation{
				{Node: 1, Side: trace.RightSide, Bucket: 3},
				{Node: 2, Side: trace.RightSide, Bucket: 5},
			},
		}},
	}
	tuned, _ := AutoTune(tr, Options{})
	if tuned != tr {
		t.Error("clean trace was transformed")
	}
}

func TestRenderReport(t *testing.T) {
	var buf bytes.Buffer
	_, r := AutoTune(workloads.Tourney(), Options{})
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"analysis of tourney", "cross-product", "multiple-modify", "suggestions", "copy-and-constraint"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAnalyzeNetworkStaticIssues(t *testing.T) {
	srcs := []string{
		`(p cross (a ^x <u>) (b ^y <w>) --> (halt))`, // no eq test
		`(p ok (a ^x <u>) (c ^x <u>) --> (halt))`,    // discriminated
	}
	var prods []*ops5.Production
	for _, src := range srcs {
		p, err := ops5.ParseProduction(src)
		if err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	net, err := rete.Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	issues := AnalyzeNetwork(net, 4)
	ccFound := false
	for _, is := range issues {
		if is.Kind == SuggestCopyAndConstrain {
			ccFound = true
		}
	}
	if !ccFound {
		t.Errorf("static analysis missed the cross-product join: %v", issues)
	}
	// The discriminated join must not be flagged.
	if len(issues) != 1 {
		t.Errorf("issues = %v, want exactly the cross-product", issues)
	}

	// Shared high-fan-out node gets an unshare warning.
	var fanProds []*ops5.Production
	for i := 0; i < 6; i++ {
		p, err := ops5.ParseProduction(fmt.Sprintf(
			`(p f%d (a ^x <v>) (b ^x <v>) (c ^k %d) --> (halt))`, i, i))
		if err != nil {
			t.Fatal(err)
		}
		fanProds = append(fanProds, p)
	}
	fnet, err := rete.Compile(fanProds)
	if err != nil {
		t.Fatal(err)
	}
	unshare := false
	for _, is := range AnalyzeNetwork(fnet, 4) {
		if is.Kind == SuggestUnshare {
			unshare = true
		}
	}
	if !unshare {
		t.Error("static analysis missed the shared fan-out node")
	}
}
