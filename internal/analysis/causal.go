package analysis

import (
	"fmt"
	"sort"

	"mpcrete/internal/obs"
)

// Happens-before reconstruction: stitch a flight-recorder dump's
// per-track event rings into one causal DAG. Two edge families order
// the events — program order within a track (a single goroutine's
// events are totally ordered by sequence number) and message order
// across tracks (a batch's send happens-before every recv carrying its
// stamp). Everything the runtime does is ordered by the transitive
// closure of those two relations; a cycle in the graph would mean the
// recorder (or the runtime) is broken, so TopoOrder doubles as a
// consistency check.

// HBEdgeKind distinguishes the two happens-before edge families.
type HBEdgeKind uint8

const (
	// ProgramEdge orders consecutive events of one track.
	ProgramEdge HBEdgeKind = iota
	// MessageEdge orders a batch send before a recv of the same stamp.
	MessageEdge
)

// HBNode is one retained event in the graph. Track is its ring's
// index (workers first, control last); Index its position within that
// ring's retained window.
type HBNode struct {
	Track int
	Index int
	Event obs.CausalEvent
}

// HBEdge is a happens-before edge between node ids.
type HBEdge struct {
	From, To int
	Kind     HBEdgeKind
}

// HBGraph is the stitched causal DAG of one dump.
type HBGraph struct {
	Nodes []HBNode
	Edges []HBEdge
	// Dangling counts recv events whose send stamp fell off the
	// sender's bounded ring (no message edge could be drawn); nonzero
	// values mean the window was too small for full stitching, not an
	// error.
	Dangling int

	adj [][]int // out-neighbours, built with the edges
}

// BuildHB stitches the dump's rings into a happens-before graph.
func BuildHB(d *obs.FlightDump) *HBGraph {
	g := &HBGraph{}
	// Nodes, in track order then ring order.
	for ti, t := range d.Tracks {
		for i, ev := range t.Events {
			g.Nodes = append(g.Nodes, HBNode{Track: ti, Index: i, Event: ev})
		}
	}
	g.adj = make([][]int, len(g.Nodes))
	addEdge := func(from, to int, kind HBEdgeKind) {
		g.Edges = append(g.Edges, HBEdge{From: from, To: to, Kind: kind})
		g.adj[from] = append(g.adj[from], to)
	}

	// Program order: consecutive retained events of one track.
	base := 0
	sends := map[int32]int{} // batch stamp -> sender node id
	for _, t := range d.Tracks {
		for i := range t.Events {
			if i > 0 {
				addEdge(base+i-1, base+i, ProgramEdge)
			}
			if ev := t.Events[i]; ev.Kind == obs.EvSend && ev.Batch != 0 {
				sends[ev.Batch] = base + i
			}
		}
		base += len(t.Events)
	}

	// Message order: send -> recv per stamp (a broadcast send fans out
	// to one recv per worker).
	for id, n := range g.Nodes {
		if n.Event.Kind != obs.EvRecv || n.Event.Batch == 0 {
			continue
		}
		if from, ok := sends[n.Event.Batch]; ok {
			addEdge(from, id, MessageEdge)
		} else {
			g.Dangling++
		}
	}
	return g
}

// TopoOrder returns a topological order of the node ids, or an error
// if the stitched graph has a cycle — which would indicate recorder or
// runtime corruption, since happens-before is acyclic by construction.
func (g *HBGraph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, len(g.Nodes))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(g.Nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, to := range g.adj[id] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("analysis: happens-before graph has a cycle (%d of %d nodes ordered)", len(order), len(g.Nodes))
	}
	return order, nil
}

// LongestChain returns the maximum number of nodes on any path through
// the graph — the causal depth of the retained window, mixing handles
// with the message hops between them.
func (g *HBGraph) LongestChain() (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	depth := make([]int, len(g.Nodes))
	best := 0
	for _, id := range order {
		if depth[id] == 0 {
			depth[id] = 1
		}
		if depth[id] > best {
			best = depth[id]
		}
		for _, to := range g.adj[id] {
			if depth[id]+1 > depth[to] {
				depth[to] = depth[id] + 1
			}
		}
	}
	return best, nil
}

// QueueWait is the mailbox residence of one stitched batch: the
// interval between its send and the drain that received it.
type QueueWait struct {
	Batch    int32
	From, To int // track ids
	Count    int32
	WaitNS   int64
}

// CyclePathDepth is one cycle's measured critical path, in dependent
// activation steps — directly comparable to CriticalPath on the
// sequential trace of the same run, which is its lower bound (and,
// because both sides walk the same activation forest with the same
// counting rule, its expected exact value).
type CyclePathDepth struct {
	Cycle int32
	Depth int32
}

// CausalSeries are the per-run series the ROADMAP's adaptive
// repartitioning and multi-node transport work consume, extracted from
// one dump.
type CausalSeries struct {
	// MeasuredCritPaths holds one entry per retained cycle (exact:
	// aggregates survive ring eviction).
	MeasuredCritPaths []CyclePathDepth
	// WorkerHandles is per-track activation counts over the retained
	// cycles (control last, always zero handles).
	WorkerHandles []int64
	// BucketLoads is the cumulative per-bucket activation load merged
	// across workers, ascending by bucket (whole run, not just the
	// retained window).
	BucketLoads []obs.BucketLoad
	// QueueWaits holds one entry per stitched (send, recv) pair in the
	// retained windows, in recv order.
	QueueWaits []QueueWait
	// Fanouts is the distribution of handle fan-outs in the retained
	// windows: Fanouts[k] = number of handles generating k successors
	// (the paper's multiple-successor bottleneck shows up as mass far
	// to the right).
	Fanouts []int64
}

// CausalSeriesFrom extracts the series from a dump.
func CausalSeriesFrom(d *obs.FlightDump) *CausalSeries {
	s := &CausalSeries{WorkerHandles: make([]int64, len(d.Tracks))}

	for _, c := range d.Cycles {
		agg := c.Total()
		s.MeasuredCritPaths = append(s.MeasuredCritPaths, CyclePathDepth{Cycle: c.Cycle, Depth: agg.MaxDepth})
		for ti, a := range c.PerTrack {
			s.WorkerHandles[ti] += a.Handles
		}
	}

	// Merge cumulative bucket loads across tracks.
	merged := map[int]int64{}
	for _, t := range d.Tracks {
		for _, bl := range t.BucketLoads {
			merged[bl.Bucket] += bl.Count
		}
	}
	for b, n := range merged {
		s.BucketLoads = append(s.BucketLoads, obs.BucketLoad{Bucket: b, Count: n})
	}
	sort.Slice(s.BucketLoads, func(i, j int) bool { return s.BucketLoads[i].Bucket < s.BucketLoads[j].Bucket })

	// Queue waits and fan-outs from the retained windows.
	type sendInfo struct {
		ts    int64
		track int
	}
	sends := map[int32]sendInfo{}
	for ti, t := range d.Tracks {
		for _, ev := range t.Events {
			if ev.Kind == obs.EvSend && ev.Batch != 0 {
				sends[ev.Batch] = sendInfo{ts: ev.TS, track: ti}
			}
		}
	}
	for ti, t := range d.Tracks {
		for _, ev := range t.Events {
			switch ev.Kind {
			case obs.EvRecv:
				if si, ok := sends[ev.Batch]; ok {
					s.QueueWaits = append(s.QueueWaits, QueueWait{
						Batch: ev.Batch, From: si.track, To: ti,
						Count: ev.Count, WaitNS: ev.TS - si.ts,
					})
				}
			case obs.EvHandle:
				for int(ev.Count) >= len(s.Fanouts) {
					s.Fanouts = append(s.Fanouts, 0)
				}
				s.Fanouts[ev.Count]++
			}
		}
	}
	return s
}

// HotBuckets returns the n heaviest buckets by cumulative activation
// load, descending (ties broken by bucket id).
func (s *CausalSeries) HotBuckets(n int) []obs.BucketLoad {
	out := append([]obs.BucketLoad(nil), s.BucketLoads...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Bucket < out[j].Bucket
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
