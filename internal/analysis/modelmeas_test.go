package analysis

import (
	"bytes"
	"strings"
	"testing"

	"mpcrete/internal/workloads"
)

// mmWorkloads are the acceptance workloads: the Rubik-like and
// Tourney-like programs from internal/workloads.
var mmWorkloads = []struct {
	name, prog, wmes string
}{
	{"rubik", workloads.RubikLike, workloads.RubikLikeWMEs(3, 4)},
	{"tourney", workloads.TourneyLike, workloads.TourneyLikeWMEs(4, 3)},
}

// TestModelMeasuredCritPathBound is the acceptance check: the measured
// critical path is >= the trace CriticalPath lower bound on every
// cycle, for both workloads, at one and several workers, on both
// message planes.
func TestModelMeasuredCritPathBound(t *testing.T) {
	for _, wl := range mmWorkloads {
		for _, cfg := range []struct {
			workers int
			routed  bool
		}{
			{1, false},
			{4, false},
			{4, true},
		} {
			name := wl.name + "/" + map[bool]string{false: "broadcast", true: "routed"}[cfg.routed]
			t.Run(name, func(t *testing.T) {
				rep, err := CompareModelMeasured(wl.name, wl.prog, wl.wmes, MMOptions{
					Workers: cfg.workers, RouteRoots: cfg.routed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Rows) == 0 {
					t.Fatal("empty report")
				}
				if err := rep.CheckCritPathBound(); err != nil {
					t.Fatal(err)
				}
				// Both sides walk the same activation forest with the same
				// counting rule, so the bound should in fact be tight.
				for _, row := range rep.Rows {
					if int(row.MeasuredCritPath) != row.CritPathBound {
						t.Errorf("cycle %d: measured critical path %d != trace bound %d",
							row.Cycle, row.MeasuredCritPath, row.CritPathBound)
					}
				}
				// Activation totals are directly comparable: the model
				// replays the same trace the measured run re-executes.
				var predActs, measActs int64
				for _, row := range rep.Rows {
					predActs += int64(row.PredictedActs)
					measActs += row.MeasuredHandles
				}
				if predActs != measActs {
					t.Errorf("predicted activations %d != measured handles %d", predActs, measActs)
				}
				if rep.Dump == nil {
					t.Error("report carries no flight dump")
				}
			})
		}
	}
}

func TestModelMeasuredAlignment(t *testing.T) {
	rep, err := CompareModelMeasured("rubik", workloads.RubikLike, workloads.RubikLikeWMEs(3, 4), MMOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rep.Rows {
		if row.Cycle != i+1 {
			t.Fatalf("row %d carries cycle %d", i, row.Cycle)
		}
		if row.PredictedUS <= 0 {
			t.Fatalf("cycle %d: non-positive predicted time %f", row.Cycle, row.PredictedUS)
		}
		if row.MeasuredUS < 0 {
			t.Fatalf("cycle %d: negative measured time %f", row.Cycle, row.MeasuredUS)
		}
	}
	if rep.Fired == 0 {
		t.Fatal("no firings recorded")
	}
	if rep.PredictedMakespanUS <= 0 || rep.MeasuredMakespanUS <= 0 {
		t.Fatalf("makespans: predicted %f, measured %f", rep.PredictedMakespanUS, rep.MeasuredMakespanUS)
	}
}

// TestModelMeasuredChaos exercises the comparison under chaos
// scheduling: the MRA trajectory (and hence the bound check) must be
// schedule-independent.
func TestModelMeasuredChaos(t *testing.T) {
	rep, err := CompareModelMeasured("tourney", workloads.TourneyLike, workloads.TourneyLikeWMEs(3, 2), MMOptions{
		Workers: 4, ChaosSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckCritPathBound(); err != nil {
		t.Fatal(err)
	}
}

func TestModelMeasuredExports(t *testing.T) {
	rep, err := CompareModelMeasured("rubik", workloads.RubikLike, workloads.RubikLikeWMEs(2, 3), MMOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "rubik"`, `"critpath_bound"`, `"measured_critpath"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}

	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(rep.Rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(rep.Rows)+1)
	}
	if !strings.HasPrefix(lines[0], "cycle,predicted_us") {
		t.Fatalf("CSV header = %q", lines[0])
	}

	var txt bytes.Buffer
	if err := rep.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "measured >= trace bound") {
		t.Fatalf("render did not confirm the bound:\n%s", txt.String())
	}

	// CheckCritPathBound must actually reject a violated bound.
	bad := *rep
	bad.Rows = append([]MMRow(nil), rep.Rows...)
	bad.Rows[0].CritPathBound = int(bad.Rows[0].MeasuredCritPath) + 1
	if err := bad.CheckCritPathBound(); err == nil {
		t.Fatal("CheckCritPathBound accepted a violated bound")
	}
}
