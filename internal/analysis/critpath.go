package analysis

import "mpcrete/internal/trace"

// CriticalPath returns the length of the longest chain of dependent
// activations in one cycle: a successor activation cannot begin until
// the comparison that generated it completes, so no processor count
// can finish the cycle's match phase in fewer dependent activation
// steps. This is the trace-level analogue of the paper's Section 4.4
// observation that speedup saturates once the per-cycle dependency
// chain, not the activation volume, is the binding constraint.
//
// The bound is deliberately in activation steps, not microseconds:
// multiplying by the per-activation hash cost gives a makespan lower
// bound for any simulator overhead configuration.
func CriticalPath(c *trace.Cycle) int {
	var depth func(a *trace.Activation) int
	depth = func(a *trace.Activation) int {
		max := 0
		for _, ch := range a.Children {
			if d := depth(ch); d > max {
				max = d
			}
		}
		return max + 1
	}
	best := 0
	for _, r := range c.Roots {
		if d := depth(r); d > best {
			best = d
		}
	}
	return best
}

// CriticalPaths returns CriticalPath for every cycle of the trace.
func CriticalPaths(t *trace.Trace) []int {
	out := make([]int, len(t.Cycles))
	for i, c := range t.Cycles {
		out[i] = CriticalPath(c)
	}
	return out
}
