package analysis

import (
	"fmt"

	"mpcrete/internal/rete"
)

// NetworkIssue is a static (compile-time) warning about a Rete
// network: unlike the trace analysis, it needs no execution data, so
// it can run when a program is loaded — the moment the paper's
// source-level transformations would be applied.
type NetworkIssue struct {
	Kind   SuggestionKind
	Node   int
	Reason string
}

// AnalyzeNetwork inspects a compiled network for structural causes of
// the paper's pathologies:
//
//   - a join with no equality tests cannot be discriminated by the
//     hash function: every token it receives lands in one bucket
//     (candidate for copy-and-constraint, before any token flows);
//   - a two-input node with a large successor fan-out will serialize
//     successor generation at one bucket site (candidate for
//     unsharing or dummy nodes).
func AnalyzeNetwork(net *rete.Network, fanoutThreshold int) []NetworkIssue {
	if fanoutThreshold <= 0 {
		fanoutThreshold = 4
	}
	var issues []NetworkIssue
	for _, n := range net.Nodes {
		if !n.IsTwoInput() || n.Detached() {
			continue
		}
		if n.Kind == rete.KindJoin && len(n.EqTests) == 0 {
			issues = append(issues, NetworkIssue{
				Kind: SuggestCopyAndConstrain,
				Node: n.ID,
				Reason: fmt.Sprintf("join node %d tests no variable for equality: all its tokens hash to one bucket",
					n.ID),
			})
		}
		if len(n.Succs) > fanoutThreshold {
			issues = append(issues, NetworkIssue{
				Kind: SuggestUnshare,
				Node: n.ID,
				Reason: fmt.Sprintf("node %d feeds %d successors: successor generation serializes at its bucket sites",
					n.ID, len(n.Succs)),
			})
		}
	}
	return issues
}
