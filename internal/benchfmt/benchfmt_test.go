package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

func mkFile(bs ...Benchmark) *File {
	return &File{SchemaVersion: SchemaVersion, Benchmarks: bs}
}

func TestCompareClean(t *testing.T) {
	base := mkFile(
		Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "b", NsPerOp: 2000, AllocsPerOp: 0},
	)
	cur := mkFile(
		Benchmark{Name: "a", NsPerOp: 1100, AllocsPerOp: 100}, // +10% < 25%
		Benchmark{Name: "b", NsPerOp: 1500, AllocsPerOp: 0},   // faster
		Benchmark{Name: "c", NsPerOp: 9999, AllocsPerOp: 999}, // new: not gated
	)
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want no regressions, got %v", regs)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 10})
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1300, AllocsPerOp: 10})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("want one ns/op regression, got %v", regs)
	}
	// The same growth passes with a looser tolerance.
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Errorf("want no regressions at 50%% tolerance, got %v", regs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1000})
	// Within noise slack (1% + 8): fine.
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1017})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want allocs within slack to pass, got %v", regs)
	}
	// Beyond slack: regression, even though ns/op is unchanged.
	cur = mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1100})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("want one allocs/op regression, got %v", regs)
	}
}

func TestComparePerBenchmarkTolerance(t *testing.T) {
	// A baseline benchmark with its own looser NsTolerance passes where
	// the global tolerance would flag it...
	base := mkFile(Benchmark{Name: "wall", NsPerOp: 1000, NsTolerance: 0.6})
	cur := mkFile(Benchmark{Name: "wall", NsPerOp: 1500})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want per-benchmark tolerance to absorb +50%%, got %v", regs)
	}
	// ...but still gates growth beyond it.
	cur = mkFile(Benchmark{Name: "wall", NsPerOp: 1700})
	if regs := Compare(base, cur, 0.25); len(regs) != 1 {
		t.Errorf("want +70%% flagged at 60%% tolerance, got %v", regs)
	}
	// A tighter per-benchmark value never tightens below the global.
	base = mkFile(Benchmark{Name: "wall", NsPerOp: 1000, NsTolerance: 0.05})
	cur = mkFile(Benchmark{Name: "wall", NsPerOp: 1200})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want global tolerance to govern, got %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkFile(
		Benchmark{Name: "a", NsPerOp: 1000},
		Benchmark{Name: "gone", NsPerOp: 1000},
	)
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1000})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "gone") {
		t.Errorf("want dropped benchmark flagged, got %v", regs)
	}
}

func TestCompareBothAxesRegress(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 10})
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 5000, AllocsPerOp: 500})
	if regs := Compare(base, cur, 0.25); len(regs) != 2 {
		t.Errorf("want both axes reported, got %v", regs)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := NewFile(true)
	f.Add(Benchmark{Name: "x", Iters: 3, NsPerOp: 12.5, EventsPerSec: 100,
		NsTolerance: 1.0, Meta: map[string]string{"k": "v"}})
	path := filepath.Join(t.TempDir(), "out.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.SchemaVersion != SchemaVersion || !got.Short || len(got.Benchmarks) != 1 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if b := got.Benchmarks[0]; b.Name != "x" || b.NsTolerance != 1.0 || b.Meta["k"] != "v" {
		t.Fatalf("round trip lost benchmark fields: %+v", b)
	}
}

func TestMeasureEventsPerSec(t *testing.T) {
	b := Measure("m", 4, nil, func() int64 { return 10 })
	if b.Iters != 4 || b.Name != "m" {
		t.Fatalf("measure metadata wrong: %+v", b)
	}
	if b.EventsPerSec <= 0 {
		t.Fatalf("want positive events/sec, got %v", b.EventsPerSec)
	}
}
