// Package benchfmt defines the repo's machine-readable benchmark
// results schema and the regression gate over it. It is shared by
// cmd/bench (the reproducible benchmark harness), cmd/ops5load (the
// server load generator, which emits its latency report in the same
// format so CI tooling reads one schema), and the CI bench gate.
//
// Unlike `go test -bench`, which picks iteration counts adaptively,
// Measure pins them, so allocs/op is exactly reproducible run to run
// and the allocation gate can be strict. Wall-clock (ns/op) still
// varies with the host; Compare allows a configurable tolerance for it
// and none (beyond noise slack) for allocations.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the current results-document schema.
const SchemaVersion = 1

// Benchmark is one measured workload.
type Benchmark struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// NsTolerance, when non-zero in a baseline, overrides the global
	// tolerance for this benchmark if looser (wall-clock workloads
	// scheduled by the Go runtime need more slack than the simulator).
	NsTolerance float64           `json:"ns_tolerance,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// File is the results document.
type File struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	CPUs          int         `json:"cpus"`
	Short         bool        `json:"short"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// NewFile returns a results document stamped with the current
// environment.
func NewFile(short bool) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Short:         short,
	}
}

// Add appends a benchmark to the document.
func (f *File) Add(b Benchmark) { f.Benchmarks = append(f.Benchmarks, b) }

// Measure runs fn once to warm caches, then iters times under
// wall-clock and allocation accounting. fn returns the number of
// events it processed (0 for wall-clock-only workloads), which feeds
// EventsPerSec.
func Measure(name string, iters int, meta map[string]string, fn func() int64) Benchmark {
	fn() // warm-up: pools, rings, code paths
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events int64
	for i := 0; i < iters; i++ {
		events += fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	b := Benchmark{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		Meta:        meta,
	}
	if events > 0 && elapsed > 0 {
		b.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return b
}

// Compare gates cur against base: a benchmark regresses when its
// ns/op grows beyond the tolerance fraction, or its allocs/op grows
// beyond noise slack (1% + 8 allocations — allocation counts are
// otherwise deterministic at fixed iteration counts). A baseline
// benchmark carrying its own NsTolerance uses that instead of the
// global tolerance when it is looser (wall-clock workloads). A
// benchmark present in the baseline but missing from the current run
// is also a regression: the gate must not pass by silently dropping
// coverage.
func Compare(base, cur *File, tolerance float64) []string {
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var regressions []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		tol := tolerance
		if b.NsTolerance > tol {
			tol = b.NsTolerance
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (+%.0f%% > %.0f%% tolerance)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if limit := b.AllocsPerOp*1.01 + 8; c.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return regressions
}

// ReadFile loads a results document from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// WriteFile writes the document as indented JSON with a trailing
// newline.
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
