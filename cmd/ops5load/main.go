// Command ops5load is the load generator for ops5d: N concurrent
// simulated clients each replay full session lifecycles (open the
// served workload, run it to quiescence, snapshot, close) against a
// running server, and the per-operation latency distribution
// (p50/p99) plus sustained sessions/sec throughput is written in
// cmd/bench's results JSON schema (internal/benchfmt) so the same CI
// tooling reads both.
//
// Usage:
//
//	ops5load -addr http://127.0.0.1:8080 -clients 16 -sessions 50
//	ops5load -batch                use the batch endpoint for runs
//	ops5load -o load-report.json   write the report elsewhere
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcrete/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "ops5d base URL")
		clients  = flag.Int("clients", 8, "concurrent simulated clients")
		sessions = flag.Int("sessions", 25, "session lifecycles per client")
		cycles   = flag.Int("max-cycles", 0, "per-run cycle cap (0 = server default)")
		batch    = flag.Bool("batch", false, "drive runs through the batch endpoint")
		out      = flag.String("o", "load-report.json", "report output path")
	)
	flag.Parse()

	c := server.NewClient(*addr, nil)
	if !c.Healthy() {
		fmt.Fprintf(os.Stderr, "ops5load: server at %s is not healthy\n", *addr)
		os.Exit(1)
	}

	report, err := server.RunLoad(c, server.LoadSpec{
		Clients:   *clients,
		Sessions:  *sessions,
		MaxCycles: *cycles,
		Batch:     *batch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ops5load:", err)
		os.Exit(1)
	}

	for _, b := range report.Benchmarks {
		extra := ""
		if b.EventsPerSec > 0 {
			extra = fmt.Sprintf("  %10.1f sessions/s", b.EventsPerSec)
		}
		fmt.Printf("%-16s %6d ops  mean %10.0f ns  p50 %s ns  p99 %s ns%s\n",
			b.Name, b.Iters, b.NsPerOp, b.Meta["p50_ns"], b.Meta["p99_ns"], extra)
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ops5load:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
