// Command ops5worker is one match process of the multi-process
// runtime: it dials the control process (ops5run -transport tcp),
// receives the compiled Rete network and its bucket partition in the
// handshake, and serves match turns over its slice of the hash-table
// space until the control sends shutdown.
//
// Usage:
//
//	ops5worker -addr 127.0.0.1:7465
//	ops5worker -addr 127.0.0.1:7465 -dial-timeout 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mpcrete/internal/transport"
)

func main() {
	addr := flag.String("addr", "", "control process address (required)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "how long to keep retrying the control dial (workers typically start before the control is listening)")
	flag.Parse()

	if *addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "ops5worker: dialing control at %s\n", *addr)
	if err := transport.Serve(*addr, *dialTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "ops5worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "ops5worker: clean shutdown")
}
