package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"mpcrete/internal/difftest"
	"mpcrete/internal/obs"
)

func TestParseWorkers(t *testing.T) {
	ws, err := parseWorkers("1, 2,8")
	if err != nil || len(ws) != 3 || ws[0] != 1 || ws[1] != 2 || ws[2] != 8 {
		t.Fatalf("parseWorkers = %v, %v", ws, err)
	}
	for _, bad := range []string{"", "0", "a", "2,,4"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q) accepted", bad)
		}
	}
}

// TestSoakIterationClean is the CLI smoke test: one soak iteration's
// worth of work (generate, check, inspect the drop counter) with the
// same options wiring main uses.
func TestSoakIterationClean(t *testing.T) {
	metrics := obs.NewRegistry()
	opts := difftest.CheckOptions{
		MaxCycles: 15,
		Workers:   []int{1, 2},
		ChaosSeed: 7,
		Metrics:   metrics,
	}
	for seed := int64(1); seed <= 3; seed++ {
		if mis := difftest.Check(difftest.Gen(seed, difftest.GenConfig{}), opts); mis != nil {
			t.Fatalf("seed %d: %v", seed, mis)
		}
	}
	if d := metrics.Counter("parallel.dropped_post_close").Value(); d != 0 {
		t.Fatalf("parallel runtime dropped %d post-close messages during clean soak", d)
	}
}

// TestWriteRepro pins that a diverging case produces a shrunk .ops5
// file that decodes back through the corpus format.
func TestWriteRepro(t *testing.T) {
	opts := difftest.CheckOptions{MaxCycles: 10, Workers: []int{1}}
	// A clean case with a synthesized Mismatch: Shrink's predicate never
	// fires, so the case passes through unreduced — the point here is
	// the file I/O and corpus format, not the shrinking.
	c := difftest.Gen(1, difftest.GenConfig{})
	mis := &difftest.Mismatch{Case: c, Config: "synthetic", Detail: "injected"}
	dir := t.TempDir()
	path, err := writeRepro(dir, mis, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := difftest.Decode("repro", data); err != nil {
		t.Fatalf("written repro does not decode: %v", err)
	}
}

// TestWriteReproFlightDump pins the post-mortem artifacts: a forced
// divergence on an instrumented matrix writes the causal flight dump
// and its Chrome-trace rendering next to the shrunk repro.
func TestWriteReproFlightDump(t *testing.T) {
	opts := difftest.CheckOptions{
		MaxCycles:       10,
		Workers:         []int{2},
		FlightCycles:    8,
		ForceDivergence: "par-w2-bcast",
	}
	c := difftest.Gen(3, difftest.GenConfig{})
	mis := difftest.Check(c, opts)
	if mis == nil {
		t.Fatal("forced divergence not reported")
	}
	dir := t.TempDir()
	path, err := writeRepro(dir, mis, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := strings.TrimSuffix(path, ".ops5")
	for _, suffix := range []string{".flight.json", ".trace.json"} {
		data, err := os.ReadFile(base + suffix)
		if err != nil {
			t.Fatalf("missing dump artifact: %v", err)
		}
		if !json.Valid(data) {
			t.Fatalf("%s%s is not valid JSON", base, suffix)
		}
	}
}
