// Command difftest is the differential-correctness soak runner: it
// generates random OPS5 programs and workloads (internal/difftest) and
// runs each through the full cross-engine configuration matrix —
// sequential Rete, the parallel runtime across worker counts and both
// message-plane modes, and the shared / unshared / copy-and-constraint
// network variants — until the iteration or time budget is exhausted.
//
// Every divergence is shrunk to a minimal case and written to -out as
// a .ops5 repro file in the corpus format, ready to drop into
// internal/difftest/testdata/corpus/ as a regression seed. The exit
// status is non-zero if any run diverged, or if the parallel runtime
// silently dropped a post-close message (the parallel.dropped_post_close
// counter, satellite of the same PR).
//
// Usage:
//
//	difftest -n 500                     500 generated cases, then stop
//	difftest -duration 10m              soak for ten minutes (CI weekly job)
//	difftest -seed 1 -chaos             deterministic, chaos scheduling on
//	difftest -workers 2,4,8 -cycles 25  tune the per-case matrix
//	difftest -out repros                where .ops5 repros land
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mpcrete/internal/difftest"
	"mpcrete/internal/obs"
)

func main() {
	var (
		n        = flag.Int("n", 0, "number of generated cases to run (0 = use -duration)")
		duration = flag.Duration("duration", time.Minute, "soak length when -n is 0")
		seed     = flag.Int64("seed", 1, "base seed; case i uses seed+i")
		chaos    = flag.Bool("chaos", true, "enable chaos scheduling on parallel configurations")
		workers  = flag.String("workers", "1,2,4,8", "comma-separated worker counts")
		cycles   = flag.Int("cycles", 30, "max recognize-act cycles per case")
		out      = flag.String("out", "difftest-repros", "directory for shrunk .ops5 repro files")
		flight   = flag.Int("flight", 64, "cycles of causal flight trace retained per parallel run (0 = off)")
		force    = flag.String("force-divergence", "", "perturb configs whose name contains this substring (drills the divergence path)")
		variant  = flag.String("variant", "", "focus the matrix on one network variant (shared, unshared, candc, bounded); empty = full matrix")
		rebal    = flag.Bool("rebalance", false, "add the migration configurations (adaptive rebalancer + forced full rotations) to the matrix")
		tcp      = flag.Bool("tcp", false, "add the wire-transport configurations (loopback codec and multi-process control plane) to the matrix")
	)
	flag.Parse()

	ws, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftest:", err)
		os.Exit(2)
	}
	metrics := obs.NewRegistry()
	opts := difftest.CheckOptions{
		MaxCycles:       *cycles,
		Workers:         ws,
		Metrics:         metrics,
		FlightCycles:    *flight,
		ForceDivergence: *force,
		Variant:         *variant,
		Rebalance:       *rebal,
		TCP:             *tcp,
	}

	deadline := time.Now().Add(*duration)
	failures := 0
	i := 0
	start := time.Now()
	for ; ; i++ {
		if *n > 0 {
			if i >= *n {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		caseSeed := *seed + int64(i)
		if *chaos {
			opts.ChaosSeed = caseSeed
		}
		// Alternate engine-level cases with matcher-level scripts, and
		// sweep the generator knobs with the seed so the soak covers
		// discriminating and non-discriminating programs alike.
		cfg := difftest.GenConfig{
			Productions:  2 + int(caseSeed%4),
			EqDensity:    float64(caseSeed%5) / 4,
			NegationProb: 0.2,
		}
		var c difftest.Case
		if i%3 == 2 {
			c = difftest.GenScript(caseSeed, cfg)
		} else {
			c = difftest.Gen(caseSeed, cfg)
		}
		mis := difftest.Check(c, opts)
		if mis == nil {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "difftest: DIVERGENCE on seed %d: %v\n", caseSeed, mis)
		path, err := writeRepro(*out, mis, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "difftest: writing repro:", err)
		} else {
			fmt.Fprintf(os.Stderr, "difftest: shrunk repro written to %s\n", path)
		}
	}

	dropped := metrics.Counter("parallel.dropped_post_close").Value()
	fmt.Printf("difftest: %d cases in %s, %d divergences, %d post-close drops\n",
		i, time.Since(start).Round(time.Millisecond), failures, dropped)
	if failures > 0 || dropped > 0 {
		os.Exit(1)
	}
}

// writeRepro shrinks the diverging case against the same configuration
// matrix that caught it and persists the minimal corpus file. When the
// matrix is instrumented (-flight), the shrunk case's own divergence
// dump lands next to the repro as <name>.flight.json (raw causal
// rings) and <name>.trace.json (Chrome trace-event format, loadable in
// about:tracing / Perfetto).
func writeRepro(dir string, mis *difftest.Mismatch, opts difftest.CheckOptions) (string, error) {
	var last *difftest.Mismatch
	shrunk := difftest.Shrink(mis.Case, func(c difftest.Case) bool {
		m := difftest.Check(c, opts)
		if m != nil {
			last = m
		}
		return m != nil
	})
	if last == nil {
		last = mis // Shrink's predicate never fired: keep the original
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, shrunk.Name+".ops5")
	if err := os.WriteFile(path, shrunk.Encode(), 0o644); err != nil {
		return "", err
	}
	if last.Dump != nil {
		if err := writeDump(filepath.Join(dir, shrunk.Name+".flight.json"), last.Dump.WriteJSON); err != nil {
			return path, err
		}
		if err := writeDump(filepath.Join(dir, shrunk.Name+".trace.json"), last.Dump.WriteChromeTrace); err != nil {
			return path, err
		}
	}
	return path, nil
}

// writeDump streams one dump rendering to a file.
func writeDump(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q", part)
		}
		ws = append(ws, w)
	}
	return ws, nil
}
