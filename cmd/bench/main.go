// Command bench is the repo's reproducible benchmark harness: it runs
// the canonical performance workloads with fixed iteration counts and
// writes a machine-readable BENCH_results.json — the perf trajectory
// point CI compares against the committed BENCH_baseline.json.
//
// Unlike `go test -bench`, which picks iteration counts adaptively,
// bench pins them, so allocs/op is exactly reproducible run to run and
// the allocation gate can be strict. Wall-clock (ns/op) still varies
// with the host; the CI gate allows a configurable tolerance for it
// and none (beyond noise slack) for allocations.
//
// Usage:
//
//	bench                          run everything, write BENCH_results.json
//	bench -short                   CI mode: fewer iterations, same workloads
//	bench -o out.json              write results elsewhere
//	bench -compare BENCH_baseline.json
//	                               exit 1 if any benchmark regressed vs the
//	                               baseline (>25% ns/op by default, or any
//	                               allocs/op growth beyond noise slack)
//	bench -tolerance 0.10          tighten the ns/op gate
//
// The workloads:
//
//	fig51/<section>   Fig 5-1 speedup sweep (P ∈ {8,16,32}, zero overheads)
//	fig52/<section>   Fig 5-2 overhead sweep (P=32, Table 5-1 runs 1-4)
//	sweep/stress      a cold concurrent sweep of all sections × 5 proc
//	                  counts with memoized baselines (internal/sweep)
//	parallel/match    the real goroutine runtime on a cross-product burst
//	parallel/w<N>-<det>-<mode>
//	                  the runtime family: N ∈ {1,2,4,8} workers, det ∈
//	                  {count,four} termination detectors, mode ∈ {bcast,
//	                  routed} root delivery (Fig 3-3 vs Fig 3-2)
//	obs/flight-<off|on>
//	                  the causal flight recorder's overhead on the same
//	                  burst: off = nil recorder (the always-paid nil
//	                  check), on = full per-event recording
//
// Wall-clock-only benchmarks (the parallel family) are scheduled by the
// Go runtime and inherently noisier than the simulator workloads; they
// carry a per-benchmark ns_tolerance in the results file that Compare
// uses in place of the global -tolerance when it is looser.
//
// Refreshing the baseline after an intentional perf change:
//
//	go run ./cmd/bench -short -o BENCH_baseline.json
//
// (the committed baseline is recorded in -short mode because that is
// what CI runs; iteration counts do not change the workload shape).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mpcrete/internal/core"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

// Benchmark is one measured workload.
type Benchmark struct {
	Name         string  `json:"name"`
	Iters        int     `json:"iters"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// NsTolerance, when non-zero in a baseline, overrides the global
	// -tolerance for this benchmark if looser (wall-clock workloads
	// scheduled by the Go runtime need more slack than the simulator).
	NsTolerance float64           `json:"ns_tolerance,omitempty"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// File is the results document.
type File struct {
	SchemaVersion int         `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at"`
	GoVersion     string      `json:"go_version"`
	GOOS          string      `json:"goos"`
	GOARCH        string      `json:"goarch"`
	CPUs          int         `json:"cpus"`
	Short         bool        `json:"short"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

func main() {
	short := flag.Bool("short", false, "CI mode: fewer iterations per benchmark")
	out := flag.String("o", "BENCH_results.json", "results output path")
	baseline := flag.String("compare", "", "baseline file to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth vs the baseline")
	flag.Parse()

	f := &File{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Short:         *short,
	}
	iters := func(full, shortN int) int {
		if *short {
			return shortN
		}
		return full
	}

	sections := []struct {
		name string
		gen  func() *trace.Trace
	}{
		{"rubik", workloads.Rubik},
		{"tourney", workloads.Tourney},
		{"weaver", workloads.Weaver},
	}

	// fig51/<section>: the Fig 5-1 speedup points.
	fig51Procs := []int{8, 16, 32}
	for _, sec := range sections {
		tr := sec.gen()
		f.add(measure("fig51/"+sec.name, iters(10, 3),
			map[string]string{"procs": "8,16,32", "overhead": "zero"},
			func() int64 {
				var events int64
				for _, p := range fig51Procs {
					cfg := core.NewConfig(p)
					_, res, base, err := core.Speedup(tr, cfg)
					if err != nil {
						fatal(err)
					}
					events += res.Events + base.Events
				}
				return events
			}))
	}

	// fig52/<section>: the Fig 5-2 overhead sweep at 32 processors.
	for _, sec := range sections {
		tr := sec.gen()
		f.add(measure("fig52/"+sec.name, iters(10, 3),
			map[string]string{"procs": "32", "overheads": "run1-run4"},
			func() int64 {
				var events int64
				for _, ov := range core.OverheadRuns() {
					cfg := core.NewConfig(32, core.WithOverhead(ov))
					_, res, base, err := core.Speedup(tr, cfg)
					if err != nil {
						fatal(err)
					}
					events += res.Events + base.Events
				}
				return events
			}))
	}

	// sweep/stress: a cold concurrent sweep per iteration. The engine
	// is reused and Reset between iterations, so the measurement covers
	// expansion, pool scheduling, and every simulation, with no warm
	// cache carried across iterations.
	eng := sweep.New()
	spec := sweep.Spec{
		Name:      "bench-stress",
		Traces:    []*trace.Trace{workloads.Rubik(), workloads.Tourney(), workloads.Weaver()},
		Procs:     []int{2, 4, 8, 16, 32},
		Overheads: core.OverheadRuns()[1:2],
		Baseline:  true,
	}
	f.add(measure("sweep/stress", iters(5, 2),
		map[string]string{"points": "3 sections x 5 procs", "baseline": "memoized"},
		func() int64 {
			eng.Reset()
			rs, err := eng.Run(spec)
			if err != nil {
				fatal(err)
			}
			if err := rs.Err(); err != nil {
				fatal(err)
			}
			var events int64
			for _, c := range rs.Cells {
				if c.Result != nil {
					events += c.Result.Events
				}
				if c.Base != nil {
					events += c.Base.Events
				}
			}
			return events
		}))

	// parallel/*: the real goroutine runtime (wall-clock, not simulated
	// — no event count) on the cross-product burst. The network is
	// compiled once up front; each op measures runtime construction, one
	// match phase, and shutdown. The wall-clock tolerance is looser than
	// the simulator workloads' because goroutine scheduling is noisy.
	prog, err := ops5.ParseProgram(workloads.TourneyLike)
	if err != nil {
		fatal(err)
	}
	wmes, err := ops5.ParseWMEs(workloads.TourneyLikeWMEs(30, 25))
	if err != nil {
		fatal(err)
	}
	changes := make([]rete.Change, len(wmes))
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes[i] = rete.Change{Tag: rete.Add, WME: w}
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		fatal(err)
	}
	// Goroutine scheduling makes these wall-clock numbers very noisy on
	// shared CI hosts (observed swings approach 2x at low iteration
	// counts), so the family gates primarily on the deterministic
	// allocs/op axis and gives ns/op a 1.0 (doubling) tolerance.
	const parallelNsTolerance = 1.0
	parallelBench := func(name string, opts parallel.Options, meta map[string]string) {
		b := measure(name, iters(15, 5), meta, func() int64 {
			rt, err := parallel.New(net, opts)
			if err != nil {
				fatal(err)
			}
			rt.Apply(changes)
			rt.Close()
			return 0
		})
		b.NsTolerance = parallelNsTolerance
		f.add(b)
	}
	parallelBench("parallel/match", parallel.Options{Workers: 4},
		map[string]string{"workers": "4", "workload": "tourney-like 30x25"})
	for _, workers := range []int{1, 2, 4, 8} {
		for _, det := range []struct {
			name string
			d    parallel.Detector
		}{{"count", parallel.CountingDetector}, {"four", parallel.FourCounterDetector}} {
			for _, mode := range []struct {
				name   string
				routed bool
			}{{"bcast", false}, {"routed", true}} {
				opts := parallel.Options{Workers: workers, Detector: det.d, RouteRoots: mode.routed}
				parallelBench(fmt.Sprintf("parallel/w%d-%s-%s", workers, det.name, mode.name), opts,
					map[string]string{
						"workers":  fmt.Sprint(workers),
						"detector": det.name,
						"roots":    mode.name,
						"workload": "tourney-like 30x25",
					})
			}
		}
	}

	// obs/flight-*: the flight recorder's cost on the same burst —
	// flight-off pins the nil-recorder path (one nil check per event
	// site; the disabled path's zero allocs/event is additionally pinned
	// by TestDisabledPathZeroAlloc in internal/obs), flight-on the
	// per-event store cost with a full causal recorder attached.
	for _, fl := range []struct {
		name     string
		recorder bool
	}{{"obs/flight-off", false}, {"obs/flight-on", true}} {
		fl := fl
		b := measure(fl.name, iters(15, 5),
			map[string]string{"workers": "4", "recorder": fmt.Sprint(fl.recorder), "workload": "tourney-like 30x25"},
			func() int64 {
				opts := parallel.Options{Workers: 4}
				if fl.recorder {
					opts.Causal = parallel.NewFlightRecorder(4, 0, 0, rete.DefaultNBuckets)
				}
				rt, err := parallel.New(net, opts)
				if err != nil {
					fatal(err)
				}
				rt.Apply(changes)
				rt.Close()
				return 0
			})
		b.NsTolerance = parallelNsTolerance
		f.add(b)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)

	if *baseline != "" {
		base, err := readFile(*baseline)
		if err != nil {
			fatal(err)
		}
		regressions := Compare(base, f, *tolerance)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d regression(s) vs %s\n", len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (ns tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}

func (f *File) add(b Benchmark) {
	f.Benchmarks = append(f.Benchmarks, b)
	ev := ""
	if b.EventsPerSec > 0 {
		ev = fmt.Sprintf("  %12.0f events/s", b.EventsPerSec)
	}
	fmt.Printf("%-16s %4d iters  %12.0f ns/op  %10.0f allocs/op  %12.0f B/op%s\n",
		b.Name, b.Iters, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp, ev)
}

// measure runs fn once to warm caches, then iters times under
// wall-clock and allocation accounting. fn returns the number of
// simulator events it processed (0 for wall-clock-only workloads).
func measure(name string, iters int, meta map[string]string, fn func() int64) Benchmark {
	fn() // warm-up: pools, rings, code paths
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events int64
	for i := 0; i < iters; i++ {
		events += fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	b := Benchmark{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		Meta:        meta,
	}
	if events > 0 && elapsed > 0 {
		b.EventsPerSec = float64(events) / elapsed.Seconds()
	}
	return b
}

// Compare gates cur against base: a benchmark regresses when its
// ns/op grows beyond the tolerance fraction, or its allocs/op grows
// beyond noise slack (1% + 8 allocations — allocation counts are
// otherwise deterministic at fixed iteration counts). A baseline
// benchmark carrying its own NsTolerance uses that instead of the
// global tolerance when it is looser (wall-clock workloads). A
// benchmark present in the baseline but missing from the current run
// is also a regression: the gate must not pass by silently dropping
// coverage.
func Compare(base, cur *File, tolerance float64) []string {
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var regressions []string
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		tol := tolerance
		if b.NsTolerance > tol {
			tol = b.NsTolerance
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (+%.0f%% > %.0f%% tolerance)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if limit := b.AllocsPerOp*1.01 + 8; c.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return regressions
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &File{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(2)
}
