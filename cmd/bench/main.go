// Command bench is the repo's reproducible benchmark harness: it runs
// the canonical performance workloads with fixed iteration counts and
// writes a machine-readable BENCH_results.json — the perf trajectory
// point CI compares against the committed BENCH_baseline.json. The
// results schema and the regression gate live in internal/benchfmt,
// shared with cmd/ops5load.
//
// Usage:
//
//	bench                          run everything, write BENCH_results.json
//	bench -short                   CI mode: fewer iterations, same workloads
//	bench -o out.json              write results elsewhere
//	bench -compare BENCH_baseline.json
//	                               exit 1 if any benchmark regressed vs the
//	                               baseline (>25% ns/op by default, or any
//	                               allocs/op growth beyond noise slack)
//	bench -tolerance 0.10          tighten the ns/op gate
//
// The workloads:
//
//	fig51/<section>   Fig 5-1 speedup sweep (P ∈ {8,16,32}, zero overheads)
//	fig52/<section>   Fig 5-2 overhead sweep (P=32, Table 5-1 runs 1-4)
//	sweep/stress      a cold concurrent sweep of all sections × 5 proc
//	                  counts with memoized baselines (internal/sweep)
//	parallel/match    the real goroutine runtime on a cross-product burst
//	parallel/w<N>-<det>-<mode>
//	                  the runtime family: N ∈ {1,2,4,8} workers, det ∈
//	                  {count,four} termination detectors, mode ∈ {bcast,
//	                  routed} root delivery (Fig 3-3 vs Fig 3-2)
//	parallel/migrate-w4, adapt-w4, rebalance-idle-w4
//	                  the migration protocol: forced full rotation every
//	                  cycle, the adaptive balancer recovering from an
//	                  all-on-one-worker start, and the armed-but-idle
//	                  detector's bookkeeping overhead
//	obs/flight-<off|on>
//	                  the causal flight recorder's overhead on the same
//	                  burst: off = nil recorder (the always-paid nil
//	                  check), on = full per-event recording
//	server/sessions-sec
//	                  multi-tenant session turnover: open a session over
//	                  the shared compiled network via the in-process HTTP
//	                  server, assert, run, close
//	server/assert-c<N>
//	                  per-assert request latency with N ∈ {1,8,64}
//	                  concurrent sessions driving the server
//
// Wall-clock-only benchmarks (the parallel and server families) are
// scheduled by the Go runtime and inherently noisier than the simulator
// workloads; they carry a per-benchmark ns_tolerance in the results
// file that Compare uses in place of the global -tolerance when it is
// looser.
//
// Refreshing the baseline after an intentional perf change:
//
//	go run ./cmd/bench -short -o BENCH_baseline.json
//
// (the committed baseline is recorded in -short mode because that is
// what CI runs; iteration counts do not change the workload shape).
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcrete/internal/benchfmt"
	"mpcrete/internal/core"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/sweep"
	"mpcrete/internal/trace"
	"mpcrete/internal/transport"
	"mpcrete/internal/workloads"
)

func main() {
	short := flag.Bool("short", false, "CI mode: fewer iterations per benchmark")
	out := flag.String("o", "BENCH_results.json", "results output path")
	baseline := flag.String("compare", "", "baseline file to gate against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth vs the baseline")
	flag.Parse()

	f := benchfmt.NewFile(*short)
	add := func(b benchfmt.Benchmark) {
		f.Add(b)
		ev := ""
		if b.EventsPerSec > 0 {
			ev = fmt.Sprintf("  %12.0f events/s", b.EventsPerSec)
		}
		fmt.Printf("%-16s %4d iters  %12.0f ns/op  %10.0f allocs/op  %12.0f B/op%s\n",
			b.Name, b.Iters, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp, ev)
	}
	iters := func(full, shortN int) int {
		if *short {
			return shortN
		}
		return full
	}

	sections := []struct {
		name string
		gen  func() *trace.Trace
	}{
		{"rubik", workloads.Rubik},
		{"tourney", workloads.Tourney},
		{"weaver", workloads.Weaver},
	}

	// fig51/<section>: the Fig 5-1 speedup points.
	fig51Procs := []int{8, 16, 32}
	for _, sec := range sections {
		tr := sec.gen()
		add(benchfmt.Measure("fig51/"+sec.name, iters(10, 3),
			map[string]string{"procs": "8,16,32", "overhead": "zero"},
			func() int64 {
				var events int64
				for _, p := range fig51Procs {
					cfg := core.NewConfig(p)
					_, res, base, err := core.Speedup(tr, cfg)
					if err != nil {
						fatal(err)
					}
					events += res.Events + base.Events
				}
				return events
			}))
	}

	// fig52/<section>: the Fig 5-2 overhead sweep at 32 processors.
	for _, sec := range sections {
		tr := sec.gen()
		add(benchfmt.Measure("fig52/"+sec.name, iters(10, 3),
			map[string]string{"procs": "32", "overheads": "run1-run4"},
			func() int64 {
				var events int64
				for _, ov := range core.OverheadRuns() {
					cfg := core.NewConfig(32, core.WithOverhead(ov))
					_, res, base, err := core.Speedup(tr, cfg)
					if err != nil {
						fatal(err)
					}
					events += res.Events + base.Events
				}
				return events
			}))
	}

	// sweep/stress: a cold concurrent sweep per iteration. The engine
	// is reused and Reset between iterations, so the measurement covers
	// expansion, pool scheduling, and every simulation, with no warm
	// cache carried across iterations.
	eng := sweep.New()
	spec := sweep.Spec{
		Name:      "bench-stress",
		Traces:    []*trace.Trace{workloads.Rubik(), workloads.Tourney(), workloads.Weaver()},
		Procs:     []int{2, 4, 8, 16, 32},
		Overheads: core.OverheadRuns()[1:2],
		Baseline:  true,
	}
	add(benchfmt.Measure("sweep/stress", iters(5, 2),
		map[string]string{"points": "3 sections x 5 procs", "baseline": "memoized"},
		func() int64 {
			eng.Reset()
			rs, err := eng.Run(spec)
			if err != nil {
				fatal(err)
			}
			if err := rs.Err(); err != nil {
				fatal(err)
			}
			var events int64
			for _, c := range rs.Cells {
				if c.Result != nil {
					events += c.Result.Events
				}
				if c.Base != nil {
					events += c.Base.Events
				}
			}
			return events
		}))

	// parallel/*: the real goroutine runtime (wall-clock, not simulated
	// — no event count) on the cross-product burst. The network is
	// compiled once up front; each op measures runtime construction, one
	// match phase, and shutdown. The wall-clock tolerance is looser than
	// the simulator workloads' because goroutine scheduling is noisy.
	prog, err := ops5.ParseProgram(workloads.TourneyLike)
	if err != nil {
		fatal(err)
	}
	wmes, err := ops5.ParseWMEs(workloads.TourneyLikeWMEs(30, 25))
	if err != nil {
		fatal(err)
	}
	changes := make([]rete.Change, len(wmes))
	for i, w := range wmes {
		w.ID, w.TimeTag = i+1, i+1
		changes[i] = rete.Change{Tag: rete.Add, WME: w}
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		fatal(err)
	}
	// Goroutine scheduling makes these wall-clock numbers very noisy on
	// shared CI hosts (observed swings approach 2x at low iteration
	// counts), so the family gates primarily on the deterministic
	// allocs/op axis and gives ns/op a 1.0 (doubling) tolerance.
	const parallelNsTolerance = 1.0
	parallelBench := func(name string, opts parallel.Options, meta map[string]string) {
		b := benchfmt.Measure(name, iters(15, 5), meta, func() int64 {
			rt, err := parallel.New(net, opts)
			if err != nil {
				fatal(err)
			}
			rt.Apply(changes)
			rt.Close()
			return 0
		})
		b.NsTolerance = parallelNsTolerance
		add(b)
	}
	parallelBench("parallel/match", parallel.Options{Workers: 4},
		map[string]string{"workers": "4", "workload": "tourney-like 30x25"})
	for _, workers := range []int{1, 2, 4, 8} {
		for _, det := range []struct {
			name string
			d    parallel.Detector
		}{{"count", parallel.CountingDetector}, {"four", parallel.FourCounterDetector}} {
			for _, mode := range []struct {
				name   string
				routed bool
			}{{"bcast", false}, {"routed", true}} {
				opts := parallel.Options{Workers: workers, Detector: det.d, RouteRoots: mode.routed}
				parallelBench(fmt.Sprintf("parallel/w%d-%s-%s", workers, det.name, mode.name), opts,
					map[string]string{
						"workers":  fmt.Sprint(workers),
						"detector": det.name,
						"roots":    mode.name,
						"workload": "tourney-like 30x25",
					})
			}
		}
	}

	// parallel/migrate-*: the migration protocol's cost on the same
	// burst. migrate-w4 forces a full partition rotation at every cycle
	// boundary (every bucket extracted, shipped, and re-injected — the
	// worst case §5.2.2 priced); adapt-w4 starts with every bucket on
	// worker 0 and lets the hair-trigger balancer spread it; idle-w4
	// arms the detector with a threshold no workload reaches, pricing
	// the always-on bookkeeping alone.
	rotate := func(workers int) func(cycle int) sched.Partition {
		return func(cycle int) sched.Partition {
			p := make(sched.Partition, rete.DefaultNBuckets)
			for b := range p {
				p[b] = (b + cycle) % workers
			}
			return p
		}
	}
	parallelBench("parallel/migrate-w4",
		parallel.Options{Workers: 4, ForceMigrate: rotate(4)},
		map[string]string{"workers": "4", "schedule": "rotate-every-cycle", "workload": "tourney-like 30x25"})
	parallelBench("parallel/adapt-w4",
		parallel.Options{
			Workers:   4,
			Partition: make(sched.Partition, rete.DefaultNBuckets),
			Rebalance: sched.Rebalance{Threshold: 1.01, MinInterval: 1},
		},
		map[string]string{"workers": "4", "schedule": "adaptive-hair-trigger", "workload": "tourney-like 30x25"})
	parallelBench("parallel/rebalance-idle-w4",
		parallel.Options{Workers: 4, Rebalance: sched.Rebalance{Threshold: 1e9, MinInterval: 1}},
		map[string]string{"workers": "4", "schedule": "armed-never-fires", "workload": "tourney-like 30x25"})

	// transport/*: the pluggable message plane on the same burst — the
	// in-process reference endpoints against the loopback TCP wire
	// (full frame codec plus real localhost sockets), isolating the
	// per-message serialization and syscall cost the multi-process
	// runtime pays. Wall-clock only; gated like the parallel family.
	for _, tr := range []struct {
		name string
		mk   func() parallel.Transport
	}{
		{"inproc", func() parallel.Transport { return parallel.InProc() }},
		{"tcp", func() parallel.Transport { return transport.NewLoopback(net) }},
	} {
		for _, det := range []struct {
			name string
			d    parallel.Detector
		}{{"count", parallel.CountingDetector}, {"four", parallel.FourCounterDetector}} {
			tr, det := tr, det
			b := benchfmt.Measure(fmt.Sprintf("transport/%s-w4-%s", tr.name, det.name), iters(10, 3),
				map[string]string{
					"workers":   "4",
					"detector":  det.name,
					"transport": tr.name,
					"workload":  "tourney-like 30x25",
				},
				func() int64 {
					rt, err := parallel.New(net, parallel.Options{Workers: 4, Detector: det.d, Transport: tr.mk()})
					if err != nil {
						fatal(err)
					}
					rt.Apply(changes)
					rt.Close()
					return 0
				})
			b.NsTolerance = parallelNsTolerance
			add(b)
		}
	}

	// join/*: the adversarial cross-product chain family (see
	// workloads.CrossChain) on the sequential matcher — plain hashed
	// Rete against copy-and-constraint and the worst-case-bounded
	// variant. Each op replays the full wme burst into a Reset matcher;
	// events = conflict-set deltas, identical across variants. The
	// point of the family is the k scaling: plain Rete's cost grows as
	// N^(k/2) (the cross-product beta memories), bounded stays
	// quadratic, so the gap widens as k doubles.
	for _, k := range []int{2, 4, 8} {
		chainProg, err := ops5.ParseProgram(workloads.CrossChain(k))
		if err != nil {
			fatal(err)
		}
		chainWMEs, err := ops5.ParseWMEs(workloads.CrossChainWMEs(k, 16))
		if err != nil {
			fatal(err)
		}
		chainChanges := make([]rete.Change, len(chainWMEs))
		for i, w := range chainWMEs {
			w.ID, w.TimeTag = i+1, i+1
			chainChanges[i] = rete.Change{Tag: rete.Add, WME: w}
		}
		for _, v := range []struct{ label, variant string }{
			{"plain", "shared"}, {"candc", "candc"}, {"bounded", "bounded"},
		} {
			cnet, err := rete.CompileVariant(chainProg.Productions, v.variant)
			if err != nil {
				fatal(err)
			}
			m := rete.NewMatcher(cnet, rete.MatcherOptions{})
			b := benchfmt.Measure(fmt.Sprintf("join/%s-k%d", v.label, k), iters(10, 3),
				map[string]string{"variant": v.variant, "k": fmt.Sprint(k), "wmes/class": "16"},
				func() int64 {
					m.Reset()
					return int64(len(m.Apply(chainChanges)))
				})
			// The small-k points finish in microseconds, so shared-host
			// noise swamps the 25% gate; the family's regression signal
			// is the strict allocs/op axis (bounded: O(1) per
			// activation) and the k8 wall-clock gap, both far beyond
			// doubling noise.
			b.NsTolerance = parallelNsTolerance
			add(b)
		}
	}

	// obs/flight-*: the flight recorder's cost on the same burst —
	// flight-off pins the nil-recorder path (one nil check per event
	// site; the disabled path's zero allocs/event is additionally pinned
	// by TestDisabledPathZeroAlloc in internal/obs), flight-on the
	// per-event store cost with a full causal recorder attached.
	for _, fl := range []struct {
		name     string
		recorder bool
	}{{"obs/flight-off", false}, {"obs/flight-on", true}} {
		fl := fl
		b := benchfmt.Measure(fl.name, iters(15, 5),
			map[string]string{"workers": "4", "recorder": fmt.Sprint(fl.recorder), "workload": "tourney-like 30x25"},
			func() int64 {
				opts := parallel.Options{Workers: 4}
				if fl.recorder {
					opts.Causal = parallel.NewFlightRecorder(4, 0, 0, rete.DefaultNBuckets)
				}
				rt, err := parallel.New(net, opts)
				if err != nil {
					fatal(err)
				}
				rt.Apply(changes)
				rt.Close()
				return 0
			})
		b.NsTolerance = parallelNsTolerance
		add(b)
	}

	// server/*: the multi-tenant HTTP server family (see serverbench.go).
	serverBenches(add, iters)

	if err := f.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)

	if *baseline != "" {
		base, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		regressions := benchfmt.Compare(base, f, *tolerance)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d regression(s) vs %s\n", len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (ns tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(2)
}
