package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"

	"mpcrete/internal/benchfmt"
	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/server"
	"mpcrete/internal/workloads"
)

// serverBenches measures the multi-tenant HTTP server end to end over
// a loopback httptest listener:
//
//	server/sessions-sec   one full session lifecycle per op — open with
//	                      the workload's seed wmes, run to quiescence,
//	                      close — so EventsPerSec is sessions/sec
//	server/assert-c<N>    N pre-opened sessions each issue one assert
//	                      concurrently, several waves per op;
//	                      EventsPerSec is the aggregate asserts/sec
//
// Like the parallel family these are wall-clock workloads (goroutine
// scheduling plus a real TCP loopback, microseconds per request), so
// they carry a very loose ns tolerance and gate primarily on
// allocs/op.
func serverBenches(add func(benchfmt.Benchmark), iters func(full, shortN int) int) {
	named, err := workloads.Named("counter")
	if err != nil {
		fatal(err)
	}
	prog, err := ops5.ParseProgram(named.Program)
	if err != nil {
		fatal(err)
	}
	compiled, err := engine.Compile(prog, engine.CompileOptions{})
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{Compiled: compiled, Workload: named})
	if err != nil {
		fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Keep one warm connection per concurrent session so connection
	// churn doesn't add allocation noise to the gate.
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.MaxIdleConns = 256
		tr.MaxIdleConnsPerHost = 128
	}
	client := server.NewClient(ts.URL, ts.Client())

	const serverNsTolerance = 3.0

	b := benchfmt.Measure("server/sessions-sec", iters(30, 10),
		map[string]string{"workload": named.Name, "transport": "http loopback"},
		func() int64 {
			id, err := client.Open(true, "")
			if err != nil {
				fatal(err)
			}
			if _, err := client.Run(id, 0); err != nil {
				fatal(err)
			}
			if err := client.Close(id); err != nil {
				fatal(err)
			}
			return 1
		})
	b.NsTolerance = serverNsTolerance
	add(b)

	for _, concurrency := range []int{1, 8, 64} {
		// Pre-open the sessions outside the measured region; each op
		// is one concurrent wave of asserts.
		ids := make([]string, concurrency)
		for i := range ids {
			id, err := client.Open(false, "")
			if err != nil {
				fatal(err)
			}
			ids[i] = id
		}
		b := benchfmt.Measure(fmt.Sprintf("server/assert-c%d", concurrency), iters(20, 5),
			map[string]string{
				"workload":    named.Name,
				"sessions":    fmt.Sprint(concurrency),
				"transport":   "http loopback",
				"op":          "assert",
				"events_unit": "asserts",
			},
			func() int64 {
				// Several waves per op so even c1 measures hundreds of
				// microseconds, not one scheduler-noisy round trip.
				const waves = 8
				for w := 0; w < waves; w++ {
					var wg sync.WaitGroup
					for _, id := range ids {
						wg.Add(1)
						go func() {
							defer wg.Done()
							if _, err := client.Assert(id, "(counter ^value 1 ^limit 0)"); err != nil {
								fatal(err)
							}
						}()
					}
					wg.Wait()
				}
				return int64(concurrency * waves)
			})
		b.NsTolerance = serverNsTolerance
		add(b)
		for _, id := range ids {
			if err := client.Close(id); err != nil {
				fatal(err)
			}
		}
	}
}
