package main

import (
	"strings"
	"testing"
)

func mkFile(bs ...Benchmark) *File {
	return &File{SchemaVersion: 1, Benchmarks: bs}
}

func TestCompareClean(t *testing.T) {
	base := mkFile(
		Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		Benchmark{Name: "b", NsPerOp: 2000, AllocsPerOp: 0},
	)
	cur := mkFile(
		Benchmark{Name: "a", NsPerOp: 1100, AllocsPerOp: 100}, // +10% < 25%
		Benchmark{Name: "b", NsPerOp: 1500, AllocsPerOp: 0},   // faster
		Benchmark{Name: "c", NsPerOp: 9999, AllocsPerOp: 999}, // new: not gated
	)
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want no regressions, got %v", regs)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 10})
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1300, AllocsPerOp: 10})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("want one ns/op regression, got %v", regs)
	}
	// The same growth passes with a looser tolerance.
	if regs := Compare(base, cur, 0.5); len(regs) != 0 {
		t.Errorf("want no regressions at 50%% tolerance, got %v", regs)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1000})
	// Within noise slack (1% + 8): fine.
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1017})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want allocs within slack to pass, got %v", regs)
	}
	// Beyond slack: regression, even though ns/op is unchanged.
	cur = mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 1100})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Errorf("want one allocs/op regression, got %v", regs)
	}
}

func TestComparePerBenchmarkTolerance(t *testing.T) {
	// A baseline benchmark with its own looser NsTolerance passes where
	// the global tolerance would flag it...
	base := mkFile(Benchmark{Name: "wall", NsPerOp: 1000, NsTolerance: 0.6})
	cur := mkFile(Benchmark{Name: "wall", NsPerOp: 1500})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want per-benchmark tolerance to absorb +50%%, got %v", regs)
	}
	// ...but still gates growth beyond it.
	cur = mkFile(Benchmark{Name: "wall", NsPerOp: 1700})
	if regs := Compare(base, cur, 0.25); len(regs) != 1 {
		t.Errorf("want +70%% flagged at 60%% tolerance, got %v", regs)
	}
	// A tighter per-benchmark value never tightens below the global.
	base = mkFile(Benchmark{Name: "wall", NsPerOp: 1000, NsTolerance: 0.05})
	cur = mkFile(Benchmark{Name: "wall", NsPerOp: 1200})
	if regs := Compare(base, cur, 0.25); len(regs) != 0 {
		t.Errorf("want global tolerance to govern, got %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkFile(
		Benchmark{Name: "a", NsPerOp: 1000},
		Benchmark{Name: "gone", NsPerOp: 1000},
	)
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 1000})
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "gone") {
		t.Errorf("want dropped benchmark flagged, got %v", regs)
	}
}

func TestCompareBothAxesRegress(t *testing.T) {
	base := mkFile(Benchmark{Name: "a", NsPerOp: 1000, AllocsPerOp: 10})
	cur := mkFile(Benchmark{Name: "a", NsPerOp: 5000, AllocsPerOp: 500})
	if regs := Compare(base, cur, 0.25); len(regs) != 2 {
		t.Errorf("want both axes reported, got %v", regs)
	}
}
