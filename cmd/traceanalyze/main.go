// Command traceanalyze runs the Section 5.2 bottleneck analysis over a
// trace and optionally applies the recommended countermeasures,
// reporting the simulated speedup before and after.
//
// Usage:
//
//	traceanalyze -trace tourney.trace
//	traceanalyze -trace tourney.trace -v
//	traceanalyze -trace tourney.trace -tune -procs 32 -o tuned.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcrete/internal/analysis"
	"mpcrete/internal/core"
	"mpcrete/internal/experiments"
	"mpcrete/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (required)")
	tune := flag.Bool("tune", false, "apply recommended transformations and compare speedups")
	procs := flag.Int("procs", 32, "processors for the before/after comparison")
	out := flag.String("o", "", "write the tuned trace here")
	verbose := flag.Bool("v", false, "print a per-cycle summary of a simulated run at -procs")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	fatal(err)
	tr, err := trace.Decode(f)
	fatal(err)
	fatal(f.Close())

	tuned, report := analysis.AutoTune(tr, analysis.Options{})
	report.Render(os.Stdout)

	if *verbose {
		reg, res, err := experiments.CollectRunMetrics(tr,
			core.NewConfig(*procs, core.WithOverhead(core.OverheadRuns()[1])))
		fatal(err)
		fmt.Printf("\nper-cycle summary at %d processors (run2 overheads), makespan %.1f µs:\n",
			*procs, res.Makespan.Microseconds())
		experiments.RenderPerCycle(os.Stdout, reg)

		// The dependency-chain floor no processor count can beat
		// (Section 4.4): per-cycle critical paths in dependent
		// activation steps.
		bounds := analysis.CriticalPaths(tr)
		total, deepest, at := 0, 0, 0
		for i, b := range bounds {
			total += b
			if b > deepest {
				deepest, at = b, i+1
			}
		}
		fmt.Printf("critical-path lower bound: %d dependent steps over %d cycles (mean %.1f), deepest cycle %d at depth %d\n",
			total, len(bounds), float64(total)/float64(max(len(bounds), 1)), at, deepest)
	}

	if *tune {
		cfg := core.NewConfig(*procs, core.WithOverhead(core.OverheadRuns()[1]))
		before, _, _, err := core.Speedup(tr, cfg)
		fatal(err)
		after, _, _, err := core.Speedup(tuned, cfg)
		fatal(err)
		fmt.Printf("\nspeedup at %d processors (run2 overheads): %.2f -> %.2f (%.2fx)\n",
			*procs, before, after, after/before)
		if *out != "" {
			of, err := os.Create(*out)
			fatal(err)
			fatal(trace.Encode(of, tuned))
			fatal(of.Close())
			fmt.Printf("tuned trace written to %s\n", *out)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceanalyze: %v\n", err)
		os.Exit(1)
	}
}
