// Command mpcsim replays a hash-table activity trace against the
// message-passing-computer model and reports timing, speedup, and
// distribution statistics.
//
// Usage:
//
//	mpcsim -trace rubik.trace -procs 16
//	mpcsim -trace rubik.trace -procs 32 -overhead run3
//	mpcsim -trace rubik.trace -procs 16 -partition greedy -dist
//	mpcsim -trace rubik.trace -procs 8 -pairs
//	mpcsim -trace rubik.trace -procs 16 -timeline out.json -metrics out.csv -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcrete/internal/core"
	"mpcrete/internal/experiments"
	"mpcrete/internal/obs"
	"mpcrete/internal/sched"
	"mpcrete/internal/simnet"
	"mpcrete/internal/stats"
	"mpcrete/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (required)")
	procs := flag.Int("procs", 16, "match processors (partition slots)")
	overhead := flag.String("overhead", "run1", "overhead setting: run1..run4, or custom with -send/-recv")
	send := flag.Float64("send", -1, "send overhead in µs (overrides -overhead)")
	recv := flag.Float64("recv", -1, "receive overhead in µs (overrides -overhead)")
	latency := flag.Float64("latency", 0.5, "network latency in µs")
	partition := flag.String("partition", "round-robin", "bucket distribution: "+strings.Join(sched.StrategyNames(), ", "))
	seed := flag.Int64("seed", 1, "seed for the random partition")
	pairs := flag.Bool("pairs", false, "use the Fig 3-2 processor-pair mapping")
	topology := flag.String("topology", "", "distance model: crossbar, mesh, hypercube, ring (default: distance-insensitive)")
	perhop := flag.Float64("perhop", 0, "added transit time per hop in µs")
	central := flag.Bool("central", false, "centralized constant tests (ablation)")
	swbcast := flag.Bool("swbcast", false, "software (serialized) broadcast")
	dist := flag.Bool("dist", false, "print per-processor left-activation distribution per cycle")
	timeline := flag.String("timeline", "", "write a Chrome trace-event timeline (open in Perfetto) here")
	metrics := flag.String("metrics", "", "write the run's metrics here (.json extension for JSON, CSV otherwise)")
	verbose := flag.Bool("v", false, "print a per-cycle summary (activations, messages, time)")
	flag.Parse()

	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	fatal(err)
	tr, err := trace.Decode(f)
	fatal(err)
	fatal(f.Close())

	var opts []core.Option
	opts = append(opts, core.WithLatency(simnet.US(*latency)))
	if *pairs {
		opts = append(opts, core.WithPairs())
	}
	if *central {
		opts = append(opts, core.WithCentralRoots())
	}
	if *swbcast {
		opts = append(opts, core.WithSoftwareBroadcast())
	}
	cfg := core.NewConfig(*procs, opts...)
	found := false
	for _, o := range core.OverheadRuns() {
		if o.Name == *overhead {
			cfg.Overhead = o
			found = true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown overhead setting %q", *overhead))
	}
	if *send >= 0 {
		cfg.Overhead.Send = simnet.US(*send)
		cfg.Overhead.Name = "custom"
	}
	if *recv >= 0 {
		cfg.Overhead.Recv = simnet.US(*recv)
		cfg.Overhead.Name = "custom"
	}

	nprocs := 1 + *procs
	if *pairs {
		nprocs = 1 + 2**procs
	}
	switch *topology {
	case "":
	case "crossbar":
		cfg.Topology = simnet.Crossbar{}
	case "mesh":
		w := 1
		for w*w < nprocs {
			w++
		}
		cfg.Topology = simnet.Mesh2D{W: w, H: (nprocs + w - 1) / w}
	case "hypercube":
		cfg.Topology = simnet.Hypercube{}
	case "ring":
		cfg.Topology = simnet.Ring{N: nprocs}
	default:
		fatal(fmt.Errorf("unknown topology %q", *topology))
	}
	cfg.PerHop = simnet.US(*perhop)

	strat, err := sched.StrategyByName(*partition, *seed)
	fatal(err)
	if _, isDefault := strat.(sched.RoundRobinStrategy); !isDefault {
		load := tr.BucketLoad(false)
		if pc, ok := strat.(sched.PerCycleStrategy); ok {
			cfg.PerCycle = pc.AssignPerCycle(load, tr.NBuckets, *procs)
		} else {
			cfg.Partition = strat.Assign(load, tr.NBuckets, *procs)
		}
	}

	var rec *obs.Recorder
	if *timeline != "" {
		rec = obs.NewRecorder()
		cfg.Recorder = rec
	}
	var reg *obs.Registry
	if *metrics != "" || *verbose {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}

	sp, res, base, err := core.Speedup(tr, cfg)
	fatal(err)

	fmt.Printf("%s\n", tr)
	fmt.Printf("machine: %d match procs (+1 control), overhead %s (%.0f/%.0f µs), latency %.1f µs, pairs=%v\n",
		*procs, cfg.Overhead.Name, cfg.Overhead.Send.Microseconds(), cfg.Overhead.Recv.Microseconds(),
		cfg.Latency.Microseconds(), *pairs)
	fmt.Printf("makespan: %.1f µs (base 1-proc: %.1f µs)  speedup: %.2f\n",
		res.Makespan.Microseconds(), base.Makespan.Microseconds(), sp)
	fmt.Printf("messages: %d, network idle: %.1f%%, avg utilization: %.1f%%\n",
		res.Net.Messages, 100*res.Net.NetworkIdleFraction(), 100*res.Net.AvgUtilization())
	gaps, gapMax := res.Net.IdleGapSummary()
	fmt.Printf("idle gaps: %d across %d procs, max %.1f µs\n",
		gaps, len(res.Net.Procs), gapMax.Microseconds())
	if *verbose {
		experiments.RenderPerCycle(os.Stdout, reg)
	} else {
		for ci, ct := range res.CycleTimes {
			fmt.Printf("  cycle %d: %.1f µs\n", ci+1, ct.Microseconds())
		}
	}

	if *timeline != "" {
		f, err := os.Create(*timeline)
		fatal(err)
		fatal(rec.WriteChromeTrace(f))
		fatal(f.Close())
		fmt.Printf("timeline written to %s (open at https://ui.perfetto.dev)\n", *timeline)
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		fatal(err)
		if strings.HasSuffix(*metrics, ".json") {
			fatal(reg.WriteJSON(f))
		} else {
			fatal(reg.WriteCSV(f))
		}
		fatal(f.Close())
		fmt.Printf("metrics written to %s\n", *metrics)
	}
	if *dist {
		for ci, perProc := range res.LeftActsPerSlot {
			stats.Bars(os.Stdout, fmt.Sprintf("cycle %d left activations per processor:", ci+1), perProc, 40)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpcsim: %v\n", err)
		os.Exit(1)
	}
}
