// Command experiments regenerates the tables and figures of the
// paper's evaluation section (see EXPERIMENTS.md for paper-vs-measured
// commentary). The grids run on the concurrent sweep engine
// (internal/sweep), so regeneration scales with the host's cores.
//
// Usage:
//
//	experiments -all
//	experiments -fig 5-1        (also: 5-2, 5-4, 5-5, 5-6)
//	experiments -table 5-1      (also: 5-2)
//	experiments -exp greedy     (also: probmodel, ablations, adaptive)
//	experiments -json -fig 5-1  (structured JSON instead of text)
//	experiments -metrics run.csv -section rubik -procs 16
//
// With -json the selected experiments emit one deterministic JSON
// document of their structured results (SpeedupSeries, table rows,
// dips, ...) instead of the rendered text tables; fig 5-3 is a
// network-rendering demonstration with no tabular data and is text
// only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcrete/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (5-1, 5-2, 5-3, 5-4, 5-5, 5-6)")
	table := flag.String("table", "", "table to regenerate (5-1, 5-2)")
	exp := flag.String("exp", "", "analysis to run (greedy, probmodel, generations, dips, continuum, ablations, adaptive)")
	all := flag.Bool("all", false, "regenerate everything")
	procs := flag.Int("procs", 16, "processor count for greedy/ablation/metrics analyses")
	jsonOut := flag.Bool("json", false, "emit structured results as deterministic JSON instead of rendered text")
	metrics := flag.String("metrics", "", "collect a section run's metrics and write them here (.json for JSON, CSV otherwise)")
	section := flag.String("section", "rubik", "workload section for -metrics (rubik, tourney, weaver)")
	flag.Parse()

	if !*all && *fig == "" && *table == "" && *exp == "" && *metrics == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	// suite collects the structured results in -json mode;
	// encoding/json sorts the keys, so the document is deterministic.
	suite := map[string]any{}
	emit := func(key string, data any, render func()) {
		if *jsonOut {
			suite[key] = data
		} else {
			render()
		}
	}

	if *metrics != "" {
		run("metrics", func() error {
			reg, res, err := experiments.SectionRunMetrics(*section, *procs)
			if err != nil {
				return err
			}
			f, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			if strings.HasSuffix(*metrics, ".json") {
				err = reg.WriteJSON(f)
			} else {
				err = reg.WriteCSV(f)
			}
			if err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "%s at %d procs: makespan %.1f µs over %d cycles; metrics written to %s\n",
				*section, *procs, res.Makespan.Microseconds(), len(res.CycleTimes), *metrics)
			return nil
		})
	}

	if *all || *table == "5-1" {
		emit("table5-1", experiments.Table51(), func() { experiments.RenderTable51(w) })
	}
	if *all || *table == "5-2" {
		emit("table5-2", experiments.Table52(), func() { experiments.RenderTable52(w) })
	}
	if *all || *fig == "5-1" {
		run("fig 5-1", func() error {
			series, err := experiments.Fig51()
			if err != nil {
				return err
			}
			emit("fig5-1", series, func() {
				experiments.RenderSeries(w, "Fig 5-1: speedups with zero message-passing overheads", series)
			})
			return nil
		})
	}
	if *all || *fig == "5-2" {
		run("fig 5-2", func() error {
			data, err := experiments.Fig52()
			if err != nil {
				return err
			}
			emit("fig5-2", data, func() { experiments.RenderFig52(w, data) })
			return nil
		})
	}
	if *all || *fig == "5-3" {
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "experiments: fig 5-3 is a network-rendering demo (text only); skipped in -json mode")
		} else {
			run("fig 5-3", func() error {
				return experiments.RenderFig53(w)
			})
		}
	}
	if *all || *fig == "5-4" {
		run("fig 5-4", func() error {
			series, err := experiments.Fig54()
			if err != nil {
				return err
			}
			emit("fig5-4", series, func() {
				experiments.RenderSeries(w, "Fig 5-4: Weaver speedups with unsharing (run2 overheads)", series)
			})
			return nil
		})
	}
	if *all || *fig == "5-5" {
		run("fig 5-5", func() error {
			d, err := experiments.Fig55()
			if err != nil {
				return err
			}
			emit("fig5-5", d, func() { experiments.RenderFig55(w, d) })
			return nil
		})
	}
	if *all || *fig == "5-6" {
		run("fig 5-6", func() error {
			series, err := experiments.Fig56()
			if err != nil {
				return err
			}
			emit("fig5-6", series, func() {
				experiments.RenderSeries(w, "Fig 5-6: Tourney speedups with copy-and-constraint (run2 overheads)", series)
			})
			return nil
		})
	}
	if *all || *exp == "greedy" {
		run("greedy", func() error {
			rs, err := experiments.GreedyExperiment(*procs)
			if err != nil {
				return err
			}
			emit("greedy", rs, func() { experiments.RenderGreedy(w, rs) })
			return nil
		})
	}
	if *all || *exp == "probmodel" {
		rs := experiments.ProbModel()
		emit("probmodel", rs, func() { experiments.RenderProbModel(w, rs) })
	}
	if *all || *exp == "dips" {
		run("dips", func() error {
			dips, err := experiments.Dips("rubik", 40)
			if err != nil {
				return err
			}
			emit("dips", dips, func() { experiments.RenderDips(w, "rubik", dips, 40) })
			return nil
		})
	}
	if *all || *exp == "continuum" {
		run("continuum", func() error {
			r, err := experiments.Continuum("rubik")
			if err != nil {
				return err
			}
			emit("continuum", r, func() { experiments.RenderContinuum(w, r) })
			return nil
		})
	}
	if *all || *exp == "generations" {
		run("generations", func() error {
			rs, err := experiments.Generations()
			if err != nil {
				return err
			}
			emit("generations", rs, func() { experiments.RenderGenerations(w, rs) })
			return nil
		})
	}
	if *all || *exp == "ablations" {
		run("ablations", func() error {
			rs, err := experiments.Ablations(*procs)
			if err != nil {
				return err
			}
			emit("ablations", rs, func() { experiments.RenderAblations(w, rs, *procs) })
			return nil
		})
	}
	if *all || *exp == "adaptive" {
		run("adaptive", func() error {
			rs, err := experiments.AdaptiveExperiment(*procs)
			if err != nil {
				return err
			}
			emit("adaptive", rs, func() { experiments.RenderAdaptive(w, rs) })
			return nil
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: json: %v\n", err)
			os.Exit(1)
		}
	}
}
