// Command ops5d is the multi-tenant OPS5 rule-engine server: it
// compiles one production-system program at startup and serves
// thousands of independent working-memory sessions over HTTP/JSON, all
// sharing the compiled Rete network read-only. See internal/server for
// the wire protocol.
//
// Usage:
//
//	ops5d -workload blocks                 serve a built-in workload
//	ops5d -program rules.ops5              serve an OPS5 source file
//	ops5d -addr :8080 -debug-addr :6060    API and pprof/expvar listeners
//	ops5d -max-sessions 4096 -queue 256    capacity limits
//
// SIGTERM/SIGINT drain gracefully: admission stops (503), in-flight
// requests finish, sessions close, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/server"
	"mpcrete/internal/workloads"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "API listen address")
		debugAddr   = flag.String("debug-addr", "", "pprof/expvar listen address (empty = disabled)")
		programPath = flag.String("program", "", "OPS5 program file to serve")
		workload    = flag.String("workload", "", fmt.Sprintf("built-in workload to serve %v", workloads.NamedNames()))
		maxSessions = flag.Int("max-sessions", 4096, "maximum live sessions")
		maxInflight = flag.Int("inflight", 0, "concurrent request slots (0 = 2*GOMAXPROCS)")
		queueDepth  = flag.Int("queue", 256, "waiting requests beyond inflight before 429")
		maxCycles   = flag.Int("max-cycles", 1000, "default per-run cycle budget")
		variant     = flag.String("variant", "shared", "network variant: "+strings.Join(rete.Variants(), ", "))
		par         = flag.Int("parallel", 0, "give each session a parallel match runtime with this many workers (0 = sequential)")
		rebalance   = flag.Float64("rebalance", 0, "arm each parallel session's online adaptive repartitioner at this max/mean imbalance threshold, e.g. 1.3 (0 = off; requires -parallel)")
		rebalanceIv = flag.Int("rebalance-interval", 0, "minimum cycles between adaptive migrations (0 = default)")
	)
	flag.Parse()

	if err := run(*addr, *debugAddr, *programPath, *workload, *variant, *maxSessions, *maxInflight, *queueDepth, *maxCycles, *par, *rebalance, *rebalanceIv); err != nil {
		fmt.Fprintln(os.Stderr, "ops5d:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr, programPath, workload, variant string, maxSessions, maxInflight, queueDepth, maxCycles, par int, rebalance float64, rebalanceIv int) error {
	var named workloads.NamedProgram
	switch {
	case programPath != "" && workload != "":
		return errors.New("-program and -workload are mutually exclusive")
	case programPath != "":
		src, err := os.ReadFile(programPath)
		if err != nil {
			return err
		}
		named = workloads.NamedProgram{Name: programPath, Program: string(src)}
	case workload != "":
		var err error
		named, err = workloads.Named(workload)
		if err != nil {
			return err
		}
	default:
		return errors.New("one of -program or -workload is required")
	}

	prog, err := ops5.ParseProgram(named.Program)
	if err != nil {
		return fmt.Errorf("parse %s: %w", named.Name, err)
	}
	compiled, err := engine.Compile(prog, engine.CompileOptions{Variant: variant})
	if err != nil {
		return fmt.Errorf("compile %s: %w", named.Name, err)
	}

	metrics := obs.NewRegistry()
	var newMatcher func() engine.MatchApplier
	if par > 0 {
		if rebalance < 0 {
			return fmt.Errorf("-rebalance %v: threshold must be >= 0", rebalance)
		}
		var reb sched.Rebalance
		if rebalance > 0 {
			reb = sched.DefaultRebalance()
			reb.Threshold = rebalance
			if rebalanceIv > 0 {
				reb.MinInterval = rebalanceIv
			}
		}
		popts := parallel.Options{Workers: par, Rebalance: reb}
		// Validate the options once at startup so the per-session
		// factory cannot fail later.
		probe, err := parallel.New(compiled.Network(), popts)
		if err != nil {
			return fmt.Errorf("parallel session runtime: %w", err)
		}
		probe.Close()
		newMatcher = func() engine.MatchApplier {
			rt, err := parallel.New(compiled.Network(), popts)
			if err != nil {
				panic(fmt.Sprintf("ops5d: session runtime: %v", err))
			}
			return rt
		}
	} else if rebalance > 0 {
		return errors.New("-rebalance requires -parallel")
	}
	srv, err := server.New(server.Config{
		Compiled:         compiled,
		Workload:         named,
		MaxSessions:      maxSessions,
		MaxInflight:      maxInflight,
		QueueDepth:       queueDepth,
		DefaultMaxCycles: maxCycles,
		Metrics:          metrics,
		NewMatcher:       newMatcher,
	})
	if err != nil {
		return err
	}

	if debugAddr != "" {
		dbg, stop, err := obs.ServeDebug(debugAddr, map[string]func() any{
			"metrics": metrics.SnapshotVar(),
		})
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		defer stop()
		log.Printf("ops5d: debug server on http://%s/debug/pprof/", dbg)
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer cancel()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("ops5d: serving %s (%d productions) on http://%s", named.Name, len(prog.Productions), addr)
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("ops5d: draining")
	srv.Drain()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("ops5d: drained cleanly")
	return nil
}
