// Command tracegen emits hash-table activity traces: either one of
// the calibrated characteristic sections (rubik, tourney, weaver) or
// a trace recorded from a bundled demo program.
//
// Usage:
//
//	tracegen -section rubik -o rubik.trace
//	tracegen -demo blocks -o blocks.trace
//	tracegen -section weaver -split 4 -o weaver-unshared.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"mpcrete/internal/trace"
	"mpcrete/internal/workloads"
)

func main() {
	section := flag.String("section", "", "calibrated section: rubik, tourney, or weaver")
	demo := flag.String("demo", "", "record a demo program run: blocks, tourney-like, or counter")
	out := flag.String("o", "", "output file (default stdout)")
	split := flag.Int("split", 0, "apply the unsharing transformation with this many copies")
	scatter := flag.Int("scatter", 0, "apply copy-and-constraint with this many copies (tourney)")
	flag.Parse()

	var tr *trace.Trace
	switch {
	case *section != "":
		switch *section {
		case "rubik":
			tr = workloads.Rubik()
		case "tourney":
			tr = workloads.Tourney()
		case "weaver":
			tr = workloads.Weaver()
		default:
			fatal(fmt.Errorf("unknown section %q", *section))
		}
	case *demo != "":
		var err error
		switch *demo {
		case "blocks":
			tr, _, err = workloads.RecordRun("blocks", workloads.BlocksWorld, workloads.BlocksWorldWMEs(6), 200)
		case "tourney-like":
			tr, _, err = workloads.RecordRun("tourney-like", workloads.TourneyLike, workloads.TourneyLikeWMEs(8, 6), 200)
		case "counter":
			tr, _, err = workloads.RecordRun("counter", workloads.CounterChain, "(counter ^value 0 ^limit 20)", 100)
		case "queens":
			tr, _, err = workloads.RecordRun("queens", workloads.Queens, workloads.QueensWMEs(6), 50000)
		case "monkey":
			tr, _, err = workloads.RecordRun("monkey", workloads.MonkeyBananas, workloads.MonkeyBananasWMEs, 50)
		case "configurator":
			tr, _, err = workloads.RecordRun("configurator", workloads.Configurator,
				workloads.ConfiguratorWMEs(
					workloads.ConfiguratorOrder{ID: "ord-1", CPUs: 2, Disks: 6, PowerMax: 300},
					workloads.ConfiguratorOrder{ID: "ord-2", CPUs: 4, Disks: 9, PowerMax: 200},
				), 2000)
		default:
			err = fmt.Errorf("unknown demo %q", *demo)
		}
		fatal(err)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *split > 1 {
		tr = trace.SplitFanout(tr, 10, *split)
	}
	if *scatter > 1 {
		tr = trace.ScatterNode(tr, workloads.TourneyHotNode, *scatter)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	fatal(trace.Encode(w, tr))
	fmt.Fprintf(os.Stderr, "tracegen: %s\n", tr)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
