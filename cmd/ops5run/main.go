// Command ops5run executes an OPS5 program under the sequential
// match-resolve-act interpreter, optionally recording a hash-table
// activity trace for the MPC simulator.
//
// Usage:
//
//	ops5run -program rules.ops5 -wmes initial.wmes [-cycles 1000]
//	        [-strategy lex|mea] [-trace out.trace] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcrete/internal/engine"
	"mpcrete/internal/ops5"
	"mpcrete/internal/rete"
	"mpcrete/internal/trace"
)

func main() {
	programPath := flag.String("program", "", "OPS5 program file (required)")
	wmePath := flag.String("wmes", "", "initial working-memory file")
	cycles := flag.Int("cycles", 10000, "cycle limit")
	strategy := flag.String("strategy", "lex", "conflict resolution: lex or mea")
	tracePath := flag.String("trace", "", "write the hash-table activity trace here")
	nbuckets := flag.Int("buckets", 0, "hash-table buckets (power of two; default 1024)")
	verbose := flag.Bool("v", false, "print summary statistics")
	watch := flag.Int("watch", 0, "OPS5 watch level: 1 = firings, 2 = + wme changes")
	dotPath := flag.String("dot", "", "write the compiled Rete network as Graphviz DOT here")
	flag.Parse()

	if *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*programPath)
	fatal("read program", err)
	prog, err := ops5.ParseProgram(string(src))
	fatal("parse program", err)

	opts := engine.Options{Output: os.Stdout, NBuckets: *nbuckets, Watch: *watch}
	switch strings.ToLower(*strategy) {
	case "lex":
		opts.Strategy = engine.LEX
	case "mea":
		opts.Strategy = engine.MEA
	default:
		fatal("strategy", fmt.Errorf("unknown strategy %q", *strategy))
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(strings.TrimSuffix(*programPath, ".ops5"), *nbuckets)
		opts.Listener = rec
	}

	e, err := engine.New(prog, opts)
	fatal("compile", err)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		fatal("create dot", err)
		fatal("write dot", rete.WriteDOT(f, e.Network()))
		fatal("close dot", f.Close())
	}

	if *wmePath != "" {
		wsrc, err := os.ReadFile(*wmePath)
		fatal("read wmes", err)
		wmes, err := ops5.ParseWMEs(string(wsrc))
		fatal("parse wmes", err)
		e.InsertWMEs(wmes...)
	}

	fired, err := e.Run(*cycles)
	if err == engine.ErrCycleLimit {
		fmt.Fprintf(os.Stderr, "ops5run: cycle limit %d reached\n", *cycles)
	} else {
		fatal("run", err)
	}

	if *verbose {
		s := e.Network().Stats()
		fmt.Fprintf(os.Stderr, "ops5run: %d productions, %d alpha patterns, %d joins, %d negatives\n",
			len(prog.Productions), s.AlphaPatterns, s.JoinNodes, s.NegativeNodes)
		fmt.Fprintf(os.Stderr, "ops5run: fired %d, wm size %d, halted %v\n", fired, e.WMCount(), e.Halted())
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		fatal("create trace", err)
		fatal("encode trace", trace.Encode(f, rec.Trace()))
		fatal("close trace", f.Close())
		if *verbose {
			fmt.Fprintf(os.Stderr, "ops5run: %s\n", rec.Trace())
		}
	}
}

func fatal(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ops5run: %s: %v\n", what, err)
		os.Exit(1)
	}
}
