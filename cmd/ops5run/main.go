// Command ops5run executes an OPS5 program under the match-resolve-act
// interpreter — sequentially, or with the match phase on the real
// parallel goroutine runtime (-parallel) — optionally recording a
// hash-table activity trace for the MPC simulator and a wall-clock
// timeline of the parallel matcher.
//
// Usage:
//
//	ops5run -program rules.ops5 -wmes initial.wmes [-cycles 1000]
//	        [-strategy lex|mea] [-trace out.trace] [-v]
//	ops5run -workload rubik-like -v
//	ops5run -workload chain -variant bounded -v
//	ops5run -program rules.ops5 -parallel 4 -timeline out.json
//	ops5run -program rules.ops5 -parallel 4 -route-roots
//	ops5run -program rules.ops5 -parallel 4 -debug-addr localhost:6060
//
// With -transport tcp the match phase runs on separate worker
// processes: ops5run becomes the control process, listens on -listen,
// and waits for -parallel ops5worker processes to dial in before the
// first cycle:
//
//	ops5run -workload rubik-like -parallel 4 -transport tcp -listen 127.0.0.1:7465
//	ops5worker -addr 127.0.0.1:7465   (x4, in other terminals)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpcrete/internal/engine"
	"mpcrete/internal/obs"
	"mpcrete/internal/ops5"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/sched"
	"mpcrete/internal/trace"
	"mpcrete/internal/transport"
	"mpcrete/internal/workloads"
)

func main() {
	programPath := flag.String("program", "", "OPS5 program file (required)")
	wmePath := flag.String("wmes", "", "initial working-memory file")
	cycles := flag.Int("cycles", 10000, "cycle limit")
	strategy := flag.String("strategy", "lex", "conflict resolution: lex or mea")
	tracePath := flag.String("trace", "", "write the hash-table activity trace here")
	nbuckets := flag.Int("buckets", 0, "hash-table buckets (power of two; default 1024)")
	verbose := flag.Bool("v", false, "print summary statistics")
	watch := flag.Int("watch", 0, "OPS5 watch level: 1 = firings, 2 = + wme changes")
	dotPath := flag.String("dot", "", "write the compiled Rete network as Graphviz DOT here")
	par := flag.Int("parallel", 0, "run the match phase on the parallel runtime with this many workers")
	routeRoots := flag.Bool("route-roots", false, "hash-route root activations from the control goroutine (Fig 3-2) instead of broadcasting changes (requires -parallel)")
	timelinePath := flag.String("timeline", "", "write the parallel matcher's wall-clock Chrome trace timeline here (requires -parallel)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar (live runtime stats) on this address")
	workloadName := flag.String("workload", "", "built-in workload name (alternative to -program/-wmes; see internal/workloads)")
	variant := flag.String("variant", "shared", "network variant: "+strings.Join(rete.Variants(), ", "))
	transportName := flag.String("transport", "inproc", "parallel message plane: inproc (goroutine mailboxes) or tcp (multi-process; match workers are separate ops5worker processes)")
	listenAddr := flag.String("listen", "127.0.0.1:0", "control listen address for -transport tcp")
	rebalance := flag.Float64("rebalance", 0, "arm the online adaptive repartitioner at this max/mean imbalance threshold, e.g. 1.3 (0 = off; requires -parallel)")
	rebalanceInterval := flag.Int("rebalance-interval", 0, "minimum cycles between adaptive migrations (0 = default)")
	migrateEvery := flag.Int("migrate-every", 0, "force a full partition rotation every N cycles (0 = off; migration stress knob, requires -parallel)")
	flightPath := flag.String("flight-dump", "", "write the parallel run's causal flight dump (JSON) here (requires -parallel)")
	flag.Parse()

	var src, wsrc string
	var traceName string
	switch {
	case *workloadName != "" && *programPath != "":
		fatal("workload", fmt.Errorf("-workload and -program are mutually exclusive"))
	case *workloadName != "":
		wl, err := workloads.Named(*workloadName)
		fatal("workload", err)
		src, wsrc = wl.Program, wl.WMEs
		traceName = *workloadName
	case *programPath != "":
		b, err := os.ReadFile(*programPath)
		fatal("read program", err)
		src = string(b)
		traceName = strings.TrimSuffix(*programPath, ".ops5")
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *wmePath != "" {
		b, err := os.ReadFile(*wmePath)
		fatal("read wmes", err)
		wsrc = string(b)
	}
	prog, err := ops5.ParseProgram(src)
	fatal("parse program", err)

	opts := engine.Options{Output: os.Stdout, NBuckets: *nbuckets, Watch: *watch, Variant: *variant}
	switch strings.ToLower(*strategy) {
	case "lex":
		opts.Strategy = engine.LEX
	case "mea":
		opts.Strategy = engine.MEA
	default:
		fatal("strategy", fmt.Errorf("unknown strategy %q", *strategy))
	}

	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder(traceName, *nbuckets)
		opts.Listener = rec
	}

	if *timelinePath != "" && *par <= 0 {
		fatal("timeline", fmt.Errorf("-timeline records the parallel matcher; add -parallel N"))
	}
	if *routeRoots && *par <= 0 {
		fatal("route-roots", fmt.Errorf("-route-roots selects the parallel runtime's root delivery; add -parallel N"))
	}
	if *flightPath != "" && *par <= 0 {
		fatal("flight-dump", fmt.Errorf("-flight-dump records the parallel matcher; add -parallel N"))
	}
	if *transportName == "tcp" && *par <= 0 {
		fatal("transport", fmt.Errorf("-transport tcp needs -parallel N (the worker process count)"))
	}
	var timeline *obs.Recorder
	var rt *parallel.Runtime
	var ctl *transport.Control
	if *par > 0 {
		if *tracePath != "" {
			fatal("parallel", fmt.Errorf("-trace requires the sequential matcher (the recorder hooks rete.Matcher)"))
		}
		net, err := rete.CompileVariant(prog.Productions, *variant)
		fatal("compile", err)
		nb := *nbuckets
		if nb == 0 {
			nb = rete.DefaultNBuckets
		}
		var causal *obs.CausalRecorder
		if *flightPath != "" {
			causal = parallel.NewFlightRecorder(*par, 0, 0, nb)
		}
		var reb sched.Rebalance
		if *rebalance > 0 {
			reb = sched.DefaultRebalance()
			reb.Threshold = *rebalance
			if *rebalanceInterval > 0 {
				reb.MinInterval = *rebalanceInterval
			}
		}
		var forceMigrate func(cycle int) sched.Partition
		if *migrateEvery > 0 {
			every, workers := *migrateEvery, *par
			forceMigrate = func(cycle int) sched.Partition {
				if cycle%every != 0 {
					return nil
				}
				p := make(sched.Partition, nb)
				for b := range p {
					p[b] = (b + cycle/every) % workers
				}
				return p
			}
		}
		switch *transportName {
		case "inproc":
			if *timelinePath != "" {
				timeline = obs.NewRecorder()
			}
			rt, err = parallel.New(net, parallel.Options{
				Workers:      *par,
				NBuckets:     *nbuckets,
				RouteRoots:   *routeRoots,
				Recorder:     timeline,
				Causal:       causal,
				Rebalance:    reb,
				ForceMigrate: forceMigrate,
			})
			fatal("parallel runtime", err)
			defer rt.Close()
			opts.Matcher = rt
		case "tcp":
			if *timelinePath != "" {
				fatal("timeline", fmt.Errorf("-timeline hooks the in-process runtime; use -flight-dump with -transport tcp"))
			}
			ctl, err = transport.Listen(net, *listenAddr, transport.ControlOptions{
				Workers:      *par,
				NBuckets:     *nbuckets,
				RouteRoots:   *routeRoots,
				Causal:       causal,
				Rebalance:    reb,
				ForceMigrate: forceMigrate,
			})
			fatal("control listen", err)
			defer ctl.Close()
			fmt.Fprintf(os.Stderr, "ops5run: control listening on %s; waiting for %d ops5worker processes\n", ctl.Addr(), *par)
			fatal("worker handshake", ctl.WaitWorkers())
			fmt.Fprintf(os.Stderr, "ops5run: %d workers connected\n", *par)
			opts.Matcher = ctl
		default:
			fatal("transport", fmt.Errorf("unknown transport %q (inproc or tcp)", *transportName))
		}
	}

	if *debugAddr != "" {
		snapshots := map[string]func() any{}
		if rt != nil {
			snapshots["runtime"] = func() any { return rt.Stats() }
		}
		if ctl != nil {
			snapshots["runtime"] = func() any { return ctl.Stats() }
		}
		addr, stop, err := obs.ServeDebug(*debugAddr, snapshots)
		fatal("debug server", err)
		defer stop()
		fmt.Fprintf(os.Stderr, "ops5run: debug server on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	e, err := engine.New(prog, opts)
	fatal("compile", err)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		fatal("create dot", err)
		fatal("write dot", rete.WriteDOT(f, e.Network()))
		fatal("close dot", f.Close())
	}

	if wsrc != "" {
		wmes, err := ops5.ParseWMEs(wsrc)
		fatal("parse wmes", err)
		e.InsertWMEs(wmes...)
	}

	fired, err := e.Run(*cycles)
	if err == engine.ErrCycleLimit {
		fmt.Fprintf(os.Stderr, "ops5run: cycle limit %d reached\n", *cycles)
	} else {
		fatal("run", err)
	}

	if *verbose {
		s := e.Network().Stats()
		fmt.Fprintf(os.Stderr, "ops5run: %d productions, %d alpha patterns, %d joins, %d negatives, %d bounded collectors\n",
			len(prog.Productions), s.AlphaPatterns, s.JoinNodes, s.NegativeNodes, s.BoundedNodes)
		fmt.Fprintf(os.Stderr, "ops5run: fired %d, wm size %d, halted %v\n", fired, e.WMCount(), e.Halted())
		var st parallel.Stats
		switch {
		case rt != nil:
			st = rt.Stats()
		case ctl != nil:
			st = ctl.Stats()
		}
		for w, n := range st.Processed {
			fmt.Fprintf(os.Stderr, "ops5run: worker %d: %d activations, %d messages sent\n",
				w, n, st.MsgsSent[w])
		}
		if *rebalance > 0 || *migrateEvery > 0 {
			var migs, buckets, entries int64
			switch {
			case rt != nil:
				migs, buckets, entries = rt.RebalanceStats()
			case ctl != nil:
				migs, buckets, entries = ctl.RebalanceStats()
			}
			fmt.Fprintf(os.Stderr, "ops5run: %d migrations moved %d buckets (%d memory entries)\n",
				migs, buckets, entries)
		}
	}
	if *flightPath != "" {
		var dump *obs.FlightDump
		if rt != nil {
			dump = rt.FlightDump()
		} else {
			dump = ctl.FlightDump()
		}
		f, err := os.Create(*flightPath)
		fatal("create flight dump", err)
		fatal("write flight dump", dump.WriteJSON(f))
		fatal("close flight dump", f.Close())
		if *verbose {
			fmt.Fprintf(os.Stderr, "ops5run: flight dump written to %s\n", *flightPath)
		}
	}
	if *timelinePath != "" {
		f, err := os.Create(*timelinePath)
		fatal("create timeline", err)
		fatal("write timeline", timeline.WriteChromeTrace(f))
		fatal("close timeline", f.Close())
		if *verbose {
			fmt.Fprintf(os.Stderr, "ops5run: timeline written to %s (open at https://ui.perfetto.dev)\n", *timelinePath)
		}
	}
	if rec != nil {
		f, err := os.Create(*tracePath)
		fatal("create trace", err)
		fatal("encode trace", trace.Encode(f, rec.Trace()))
		fatal("close trace", f.Close())
		if *verbose {
			fmt.Fprintf(os.Stderr, "ops5run: %s\n", rec.Trace())
		}
	}
}

func fatal(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ops5run: %s: %v\n", what, err)
		os.Exit(1)
	}
}
