// Command obsreport runs one OPS5 workload through both halves of the
// codebase — the recorded-trace cost model (predicted) and the
// instrumented parallel runtime (measured) — and renders the
// side-by-side model-vs-measured report. It can also export the
// measured run's causal flight dump, both raw and as a Chrome
// trace-event file with message flow arrows (load in about:tracing or
// https://ui.perfetto.dev).
//
// Usage:
//
//	obsreport -workload rubik
//	obsreport -workload tourney -workers 8 -routed
//	obsreport -workload rubik -transport tcp
//	obsreport -workload blocks -json report.json -csv report.csv
//	obsreport -workload rubik -trace rubik.trace.json -dump rubik.flight.json
//	obsreport -prog my.ops5 -wmes my.wmes -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpcrete/internal/analysis"
	"mpcrete/internal/parallel"
	"mpcrete/internal/rete"
	"mpcrete/internal/transport"
	"mpcrete/internal/workloads"
)

// namedWorkloads are the built-in program/workload pairs.
var namedWorkloads = map[string]struct {
	prog, wmes string
}{
	"rubik":   {workloads.RubikLike, workloads.RubikLikeWMEs(3, 4)},
	"tourney": {workloads.TourneyLike, workloads.TourneyLikeWMEs(4, 3)},
	"blocks":  {workloads.BlocksWorld, workloads.BlocksWorldWMEs(5)},
	"monkey":  {workloads.MonkeyBananas, workloads.MonkeyBananasWMEs},
}

func main() {
	var (
		workload = flag.String("workload", "", "built-in workload: rubik, tourney, blocks, monkey")
		progPath = flag.String("prog", "", "OPS5 program file (alternative to -workload; requires -wmes)")
		wmesPath = flag.String("wmes", "", "initial working-memory file for -prog")
		workers  = flag.Int("workers", 4, "parallel workers (also the model's processor count)")
		cycles   = flag.Int("cycles", 200, "max recognize-act cycles")
		routed   = flag.Bool("routed", false, "route root activations to their owners (Fig 3-2) instead of broadcasting")
		tname    = flag.String("transport", "inproc", "measured run's message plane: inproc (goroutine mailboxes) or tcp (loopback TCP with the full wire codec)")
		chaos    = flag.Int64("chaos", 0, "chaos-scheduling seed for the measured run (0 = off)")
		jsonOut  = flag.String("json", "", "write the report as JSON here")
		csvOut   = flag.String("csv", "", "write the per-cycle rows as CSV here")
		traceOut = flag.String("trace", "", "write the measured run's Chrome trace-event file here")
		dumpOut  = flag.String("dump", "", "write the measured run's raw flight dump (JSON) here")
	)
	flag.Parse()

	name, prog, wmes, err := resolveWorkload(*workload, *progPath, *wmesPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		flag.Usage()
		os.Exit(2)
	}

	mm := analysis.MMOptions{
		Workers:    *workers,
		MaxCycles:  *cycles,
		RouteRoots: *routed,
		ChaosSeed:  *chaos,
	}
	switch *tname {
	case "inproc":
	case "tcp":
		mm.Transport = func(n *rete.Network) parallel.Transport { return transport.NewLoopback(n) }
	default:
		fatal(fmt.Errorf("unknown transport %q (inproc or tcp)", *tname))
	}
	rep, err := analysis.CompareModelMeasured(name, prog, wmes, mm)
	fatal(err)

	fatal(rep.Render(os.Stdout))
	if *jsonOut != "" {
		fatal(writeTo(*jsonOut, rep.WriteJSON))
	}
	if *csvOut != "" {
		fatal(writeTo(*csvOut, rep.WriteCSV))
	}
	if *traceOut != "" {
		fatal(writeTo(*traceOut, rep.Dump.WriteChromeTrace))
	}
	if *dumpOut != "" {
		fatal(writeTo(*dumpOut, rep.Dump.WriteJSON))
	}
}

// resolveWorkload picks the program and initial working memory from
// either a built-in name or a -prog/-wmes file pair.
func resolveWorkload(workload, progPath, wmesPath string) (name, prog, wmes string, err error) {
	switch {
	case workload != "" && progPath != "":
		return "", "", "", fmt.Errorf("-workload and -prog are mutually exclusive")
	case workload != "":
		wl, ok := namedWorkloads[workload]
		if !ok {
			return "", "", "", fmt.Errorf("unknown workload %q", workload)
		}
		return workload, wl.prog, wl.wmes, nil
	case progPath != "":
		if wmesPath == "" {
			return "", "", "", fmt.Errorf("-prog requires -wmes")
		}
		p, err := os.ReadFile(progPath)
		if err != nil {
			return "", "", "", err
		}
		w, err := os.ReadFile(wmesPath)
		if err != nil {
			return "", "", "", err
		}
		return progPath, string(p), string(w), nil
	default:
		return "", "", "", fmt.Errorf("one of -workload or -prog is required")
	}
}

// writeTo streams one rendering to a file.
func writeTo(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
		os.Exit(1)
	}
}
