package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpcrete/internal/analysis"
)

func TestResolveWorkload(t *testing.T) {
	for name := range namedWorkloads {
		got, prog, wmes, err := resolveWorkload(name, "", "")
		if err != nil || got != name || prog == "" || wmes == "" {
			t.Errorf("resolveWorkload(%q) = %q, %d, %d, %v", name, got, len(prog), len(wmes), err)
		}
	}
	for _, bad := range [][3]string{
		{"", "", ""},            // nothing selected
		{"nope", "", ""},        // unknown name
		{"rubik", "x.ops5", ""}, // both
		{"", "x.ops5", ""},      // file without wmes
	} {
		if _, _, _, err := resolveWorkload(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("resolveWorkload(%v) accepted", bad)
		}
	}
}

func TestResolveWorkloadFiles(t *testing.T) {
	dir := t.TempDir()
	pp := filepath.Join(dir, "p.ops5")
	wp := filepath.Join(dir, "w.wmes")
	os.WriteFile(pp, []byte("(p x (a) --> (halt))"), 0o644)
	os.WriteFile(wp, []byte("(a)"), 0o644)
	name, prog, wmes, err := resolveWorkload("", pp, wp)
	if err != nil || name != pp || prog == "" || wmes == "" {
		t.Fatalf("resolveWorkload files = %q, %q, %q, %v", name, prog, wmes, err)
	}
}

// TestExportsEndToEnd drives the same pipeline main wires up and pins
// that every export lands as valid JSON/CSV.
func TestExportsEndToEnd(t *testing.T) {
	wl := namedWorkloads["rubik"]
	rep, err := analysis.CompareModelMeasured("rubik", wl.prog, wl.wmes, analysis.MMOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "r.json")
	if err := writeTo(jsonPath, rep.WriteJSON); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "r.trace.json")
	if err := writeTo(tracePath, rep.Dump.WriteChromeTrace); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jsonPath, tracePath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !json.Valid(data) {
			t.Fatalf("%s is not valid JSON", p)
		}
	}
	csvPath := filepath.Join(dir, "r.csv")
	if err := writeTo(csvPath, rep.WriteCSV); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(csvPath); len(data) == 0 {
		t.Fatal("empty CSV export")
	}
}
