package mpcrete

import (
	"bytes"
	"os"
	"os/exec"
	"testing"
)

// TestExperimentsGolden pins the complete experiment suite's JSON
// output to the committed golden file, byte for byte. This is the
// repo's strongest equivalence check: any change to the simulator —
// the event heap, the accounting, the payload pooling — that shifts a
// single makespan, message count, or busy time anywhere in the Fig
// 5-1..5-6 / Table 5-2 / continuum results fails here. Refresh the
// golden only for an intentional semantic change:
//
//	go run ./cmd/experiments -json -all > testdata/experiments_all.golden.json
//
// Only stdout is pinned; stderr carries human-facing notices (the
// text-only Fig 5-3 reminder) and is allowed to change freely.
func TestExperimentsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run subprocess in short mode")
	}
	want, err := os.ReadFile("testdata/experiments_all.golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	cmd := exec.Command("go", "run", "./cmd/experiments", "-json", "-all")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("cmd/experiments -json -all: %v\nstderr:\n%s", err, stderr.String())
	}
	got := stdout.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	// Locate the first divergence so the failure is actionable without
	// dumping two 30 KB documents.
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	lo := at - 80
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := at+80, at+80
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	t.Errorf("experiment output diverges from golden at byte %d (got %d bytes, want %d)\ngot  ...%q...\nwant ...%q...",
		at, len(got), len(want), got[lo:hiG], want[lo:hiW])
}
